//! The [`Real`] precision abstraction.
//!
//! The paper's optimised GPU kernel demotes `double` arithmetic to `float`
//! ("reducing the precision of variables", Section III). To make that a
//! first-class, testable code path rather than a copy-pasted kernel, the
//! analysis pipeline is generic over this small floating-point trait.

use crate::simd::SimdTier;
use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Minimal floating-point abstraction over `f32` and `f64`.
///
/// Only the operations the aggregate analysis pipeline needs are included;
/// this is intentionally not a general numeric tower.
pub trait Real:
    Copy
    + PartialOrd
    + Debug
    + Display
    + Default
    + Send
    + Sync
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + Sum
    + 'static
{
    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;
    /// Size of one value in bytes (4 for `f32`, 8 for `f64`), used by the
    /// GPU memory-transaction model.
    const BYTES: usize;

    /// Lossy conversion from `f64` (identity for `f64`).
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to `f64` (identity for `f64`).
    fn to_f64(self) -> f64;
    /// The smaller of `self` and `other` (NaN-free inputs assumed).
    fn min(self, other: Self) -> Self;
    /// The larger of `self` and `other` (NaN-free inputs assumed).
    fn max(self, other: Self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// True if the value is finite (not NaN or infinite).
    fn is_finite(self) -> bool;

    // -- SIMD hot-path hooks -------------------------------------------
    //
    // The four data-parallel kernels of the analysis pipeline, dispatched
    // by [`SimdTier`]. The defaults are the scalar oracle; `f32`/`f64`
    // override them with the explicit kernels in [`crate::simd`]. Every
    // override is **bit-identical** to the default at every tier (the
    // per-lane operation order is the scalar order; see the module docs
    // of [`crate::simd`]).

    /// Gather `out[i] = table[idx[i]]`, `ZERO` for indices at or beyond
    /// the table.
    fn simd_gather(tier: SimdTier, table: &[Self], idx: &[u32], out: &mut [Self]) {
        let _ = tier;
        crate::simd::gather_fallback(table, idx, out);
    }

    /// Fused gather + financial combine:
    /// `acc[i] += share * min(max(table[idx[i]]*fx - ret, 0), lim)`.
    #[allow(clippy::too_many_arguments)]
    fn simd_gather_accumulate(
        tier: SimdTier,
        table: &[Self],
        idx: &[u32],
        acc: &mut [Self],
        fx: Self,
        ret: Self,
        lim: Self,
        share: Self,
    ) {
        let _ = tier;
        crate::simd::gather_accumulate_fallback(table, idx, acc, fx, ret, lim, share);
    }

    /// Financial combine from a pre-gathered ground row:
    /// `acc[i] += share * min(max(ground[i]*fx - ret, 0), lim)`.
    fn simd_accumulate(
        tier: SimdTier,
        acc: &mut [Self],
        ground: &[Self],
        fx: Self,
        ret: Self,
        lim: Self,
        share: Self,
    ) {
        let _ = tier;
        crate::simd::accumulate_fallback(acc, ground, fx, ret, lim, share);
    }

    /// Occurrence-terms clamp (`min(max(v - ret, 0), lim)` in place) and
    /// the running maximum of the clamped values, starting from `ZERO`.
    fn simd_occurrence_clamp_max(tier: SimdTier, vals: &mut [Self], ret: Self, lim: Self) -> Self {
        let _ = tier;
        crate::simd::occurrence_clamp_max_fallback(vals, ret, lim)
    }
}

impl Real for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const BYTES: usize = 4;

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline(always)]
    fn min(self, other: Self) -> Self {
        f32::min(self, other)
    }
    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f32::max(self, other)
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }

    fn simd_gather(tier: SimdTier, table: &[Self], idx: &[u32], out: &mut [Self]) {
        crate::simd::gather_f32(tier, table, idx, out);
    }

    fn simd_gather_accumulate(
        tier: SimdTier,
        table: &[Self],
        idx: &[u32],
        acc: &mut [Self],
        fx: Self,
        ret: Self,
        lim: Self,
        share: Self,
    ) {
        crate::simd::gather_accumulate_f32(tier, table, idx, acc, fx, ret, lim, share);
    }

    fn simd_accumulate(
        tier: SimdTier,
        acc: &mut [Self],
        ground: &[Self],
        fx: Self,
        ret: Self,
        lim: Self,
        share: Self,
    ) {
        crate::simd::accumulate_f32(tier, acc, ground, fx, ret, lim, share);
    }

    fn simd_occurrence_clamp_max(tier: SimdTier, vals: &mut [Self], ret: Self, lim: Self) -> Self {
        crate::simd::occurrence_clamp_max_dispatch(tier, vals, ret, lim)
    }
}

impl Real for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const BYTES: usize = 8;

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn min(self, other: Self) -> Self {
        f64::min(self, other)
    }
    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f64::max(self, other)
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }

    fn simd_gather(tier: SimdTier, table: &[Self], idx: &[u32], out: &mut [Self]) {
        crate::simd::gather_f64(tier, table, idx, out);
    }

    fn simd_gather_accumulate(
        tier: SimdTier,
        table: &[Self],
        idx: &[u32],
        acc: &mut [Self],
        fx: Self,
        ret: Self,
        lim: Self,
        share: Self,
    ) {
        crate::simd::gather_accumulate_f64(tier, table, idx, acc, fx, ret, lim, share);
    }

    fn simd_accumulate(
        tier: SimdTier,
        acc: &mut [Self],
        ground: &[Self],
        fx: Self,
        ret: Self,
        lim: Self,
        share: Self,
    ) {
        crate::simd::accumulate_f64(tier, acc, ground, fx, ret, lim, share);
    }

    fn simd_occurrence_clamp_max(tier: SimdTier, vals: &mut [Self], ret: Self, lim: Self) -> Self {
        crate::simd::occurrence_clamp_max_dispatch(tier, vals, ret, lim)
    }
}

/// The excess-of-loss clamp `min(max(x - retention, 0), limit)`.
///
/// This single expression is the financial heart of the whole paper: it is
/// applied per event loss (financial terms), per combined occurrence loss
/// (occurrence terms, Algorithm 1 line 16) and per cumulative trial loss
/// (aggregate terms, line 22).
#[inline(always)]
pub fn xl_clamp<R: Real>(x: R, retention: R, limit: R) -> R {
    (x - retention).max(R::ZERO).min(limit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_literals() {
        assert_eq!(<f32 as Real>::ZERO, 0.0f32);
        assert_eq!(<f64 as Real>::ONE, 1.0f64);
        assert_eq!(<f32 as Real>::BYTES, 4);
        assert_eq!(<f64 as Real>::BYTES, 8);
    }

    #[test]
    fn round_trip_f32() {
        let x = <f32 as Real>::from_f64(1.5);
        assert_eq!(x, 1.5f32);
        assert_eq!(x.to_f64(), 1.5f64);
    }

    #[test]
    fn xl_clamp_below_retention_is_zero() {
        assert_eq!(xl_clamp(5.0f64, 10.0, 100.0), 0.0);
        assert_eq!(xl_clamp(10.0f64, 10.0, 100.0), 0.0);
    }

    #[test]
    fn xl_clamp_in_band_is_excess() {
        assert_eq!(xl_clamp(60.0f64, 10.0, 100.0), 50.0);
    }

    #[test]
    fn xl_clamp_above_limit_saturates() {
        assert_eq!(xl_clamp(500.0f64, 10.0, 100.0), 100.0);
        assert_eq!(xl_clamp(110.0f64, 10.0, 100.0), 100.0);
    }

    #[test]
    fn xl_clamp_f32_matches_f64_on_exact_values() {
        let cases = [
            (5.0, 10.0, 100.0),
            (60.0, 10.0, 100.0),
            (500.0, 10.0, 100.0),
        ];
        for (x, r, l) in cases {
            let wide = xl_clamp(x, r, l);
            let narrow = xl_clamp(x as f32, r as f32, l as f32);
            assert_eq!(wide, narrow as f64);
        }
    }

    #[test]
    fn min_max_are_ieee() {
        assert_eq!(Real::min(1.0f64, 2.0), 1.0);
        assert_eq!(Real::max(1.0f64, 2.0), 2.0);
        assert_eq!(Real::abs(-3.0f32), 3.0);
    }
}
