//! The sequential reference implementation of Algorithm 1.
//!
//! This module follows the paper's pseudocode faithfully: for each layer
//! and each trial, (1) look up every event's loss in each covered ELT,
//! (2) apply the ELT's financial terms and accumulate across ELTs,
//! (3) apply occurrence terms per event, (4) apply aggregate terms over
//! the running cumulative loss. Every engine in `ara-engine` is checked
//! against this implementation.

use crate::elt::EventLossTable;
use crate::error::AraError;
use crate::event::EventId;
use crate::layer::{apply_aggregate_stepwise, Layer, LayerTerms};
use crate::lookup::{BlockedGather, DirectAccessTable, LossLookup, DEFAULT_REGION_SLOTS};
use crate::real::Real;
use crate::simd::SimdTier;
use crate::yet::{TrialView, YearEventTable};
use crate::ylt::YearLossTable;

/// Default events per cache-blocked combine chunk when no tuned value is
/// supplied: the chunk's accumulator row plus its plan slice stay within
/// a ~32 KB L1 half.
pub const DEFAULT_GATHER_CHUNK: usize = 1024;

/// Ceiling on the number of events one blocked trial batch plans at once,
/// bounding the plan and combined scratch to a few MB regardless of YET
/// size (batch boundaries always fall on trial boundaries).
const MAX_BLOCK_EVENTS: usize = 1 << 20;

/// The three inputs of aggregate risk analysis (paper, Section II): the
/// YET, the collection of ELTs, and the layers.
#[derive(Debug, Clone)]
pub struct Inputs {
    /// Pre-simulated Year Event Table.
    pub yet: YearEventTable,
    /// All Event Loss Tables referenced by the layers.
    pub elts: Vec<EventLossTable>,
    /// The reinsurance layers to analyse.
    pub layers: Vec<Layer>,
}

impl Inputs {
    /// Validate cross-references: every layer covers at least one ELT and
    /// only existing ones; all ELT events fit the YET's catalogue.
    pub fn validate(&self) -> Result<(), AraError> {
        for (li, layer) in self.layers.iter().enumerate() {
            if layer.elt_indices.is_empty() {
                return Err(AraError::EmptyLayer { layer: li });
            }
            for &ei in &layer.elt_indices {
                if ei >= self.elts.len() {
                    return Err(AraError::UnknownElt { layer: li, elt: ei });
                }
            }
            layer.terms.validate()?;
        }
        let cat = self.yet.catalogue_size();
        for elt in &self.elts {
            if let Some(max) = elt.max_event() {
                if max.0 >= cat {
                    return Err(AraError::EventOutOfCatalogue {
                        event: max.0,
                        catalogue_size: cat,
                    });
                }
            }
        }
        Ok(())
    }

    /// Total number of ELT lookups the full analysis performs:
    /// `sum over layers of (elts_per_layer * total_events_in_yet)` —
    /// the "15 billion events" quantity of Section III.
    pub fn total_lookups(&self) -> u128 {
        let events = self.yet.total_events() as u128;
        self.layers
            .iter()
            .map(|l| l.num_elts() as u128 * events)
            .sum()
    }
}

/// A layer after the preprocessing stage: its ELTs expanded into lookup
/// structures and its terms captured at precision `R`.
///
/// The paper's preprocessing stage ("data is loaded into local memory")
/// corresponds to building this structure; its direct-access form is what
/// the engines treat as device global memory.
#[derive(Debug, Clone)]
pub struct PreparedLayer<R: Real, L: LossLookup<R> = DirectAccessTable<R>> {
    lookups: Vec<L>,
    fin_terms: Vec<(R, R, R, R)>,
    terms: LayerTerms,
    gather_chunk: usize,
    region_slots: usize,
    simd_tier: SimdTier,
}

impl<R: Real> PreparedLayer<R, DirectAccessTable<R>> {
    /// Prepare `layer` from `inputs`, expanding each covered ELT into a
    /// direct access table over the YET's catalogue.
    pub fn prepare(inputs: &Inputs, layer: &Layer) -> Result<Self, AraError> {
        let cat = inputs.yet.catalogue_size();
        let mut lookups = Vec::with_capacity(layer.num_elts());
        let mut fin_terms = Vec::with_capacity(layer.num_elts());
        for &ei in &layer.elt_indices {
            let elt = inputs.elts.get(ei).ok_or(AraError::UnknownElt {
                layer: layer.id.0 as usize,
                elt: ei,
            })?;
            // lint: allow(push) — prepare-time, both pre-reserved above.
            lookups.push(DirectAccessTable::from_elt(elt, cat)?);
            fin_terms.push(elt.terms().as_tuple::<R>()); // lint: allow(push)
        }
        Ok(PreparedLayer {
            lookups,
            fin_terms,
            terms: layer.terms,
            gather_chunk: DEFAULT_GATHER_CHUNK,
            region_slots: DEFAULT_REGION_SLOTS,
            simd_tier: crate::simd::active_tier(),
        })
    }
}

impl<R: Real, L: LossLookup<R>> PreparedLayer<R, L> {
    /// Assemble from explicit lookup structures (one per covered ELT, in
    /// layer order) and matching financial terms.
    pub fn from_parts(
        lookups: Vec<L>,
        fin_terms: Vec<crate::financial::FinancialTerms>,
        terms: LayerTerms,
    ) -> Self {
        assert_eq!(
            lookups.len(),
            fin_terms.len(),
            "one financial-terms tuple per lookup"
        );
        let fin_terms = fin_terms.iter().map(|t| t.as_tuple::<R>()).collect();
        PreparedLayer {
            lookups,
            fin_terms,
            terms,
            gather_chunk: DEFAULT_GATHER_CHUNK,
            region_slots: DEFAULT_REGION_SLOTS,
            simd_tier: crate::simd::active_tier(),
        }
    }

    /// Override the cache-blocked combine chunk (events per inner block);
    /// engines set this to an autotuned value at prepare time. Purely a
    /// performance knob: results are bit-identical for any chunk ≥ 1.
    pub fn with_gather_chunk(mut self, chunk: usize) -> Self {
        self.gather_chunk = chunk.max(1);
        self
    }

    /// Events per cache-blocked combine chunk.
    #[inline]
    pub fn gather_chunk(&self) -> usize {
        self.gather_chunk
    }

    /// Override the blocked-gather region size (catalogue slots per
    /// region); engines set this to an autotuned value at prepare time.
    /// Purely a performance knob: results are bit-identical for any
    /// region ≥ 1 slot.
    pub fn with_region_slots(mut self, slots: usize) -> Self {
        self.region_slots = slots.max(1);
        self
    }

    /// Catalogue slots per blocked-gather region.
    #[inline]
    pub fn region_slots(&self) -> usize {
        self.region_slots
    }

    /// Pin the SIMD tier the fused combine and occurrence kernels run at,
    /// overriding the process-wide [`crate::simd::active_tier`] default.
    /// Engines set this from the autotuner; tests and benches use it to
    /// exercise a specific tier in-process. Purely a performance knob:
    /// every tier is bit-identical (see [`crate::simd`]).
    pub fn with_simd_tier(mut self, tier: SimdTier) -> Self {
        self.simd_tier = tier;
        self
    }

    /// The SIMD tier the fused kernels dispatch to.
    #[inline]
    pub fn simd_tier(&self) -> SimdTier {
        self.simd_tier
    }

    /// The lookup structures, one per covered ELT.
    #[inline]
    pub fn lookups(&self) -> &[L] {
        &self.lookups
    }

    /// Financial terms per covered ELT as `(fx, retention, limit, share)`.
    #[inline]
    pub fn financial_terms(&self) -> &[(R, R, R, R)] {
        &self.fin_terms
    }

    /// The layer terms.
    #[inline]
    pub fn terms(&self) -> &LayerTerms {
        &self.terms
    }

    /// Number of covered ELTs.
    #[inline]
    pub fn num_elts(&self) -> usize {
        self.lookups.len()
    }

    /// Resident bytes of all lookup structures — the paper's
    /// "15 × 2,000,000 event-loss pairs generated in memory".
    pub fn memory_bytes(&self) -> usize {
        self.lookups.iter().map(|l| l.memory_bytes()).sum()
    }
}

/// Reusable per-trial scratch (SoA): the combined-loss accumulator plus a
/// ground-up gather row for the batch lookups, so the hot loop performs
/// no allocation in steady state (workhorse-collection pattern).
#[derive(Debug, Default, Clone)]
pub struct TrialWorkspace<R> {
    combined: Vec<R>,
    ground: Vec<R>,
}

impl<R: Real> TrialWorkspace<R> {
    /// Fresh empty workspace.
    pub fn new() -> Self {
        TrialWorkspace {
            combined: Vec::new(),
            ground: Vec::new(),
        }
    }

    /// Workspace pre-sized for trials of up to `max_events` occurrences.
    pub fn with_capacity(max_events: usize) -> Self {
        TrialWorkspace {
            combined: Vec::with_capacity(max_events),
            ground: Vec::with_capacity(max_events),
        }
    }

    #[inline]
    fn reset(&mut self, len: usize) -> (&mut [R], &mut [R]) {
        self.combined.clear();
        self.combined.resize(len, R::ZERO);
        self.ground.clear();
        self.ground.resize(len, R::ZERO);
        (&mut self.combined, &mut self.ground)
    }
}

/// Result of analysing one trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialResult<R> {
    /// The trial's year loss `l_r` net of all terms.
    pub year_loss: R,
    /// The largest single occurrence loss net of occurrence terms.
    pub max_occ_loss: R,
}

/// Steps 3 & 4 shared by every trial path: occurrence terms per combined
/// event loss, then aggregate terms over the running cumulative loss.
#[inline]
fn finish_trial<R: Real>(tier: SimdTier, terms: &LayerTerms, combined: &mut [R]) -> TrialResult<R> {
    // Occurrence clamp + running max is data-parallel; the aggregate scan
    // below is loop-carried and stays scalar at every tier.
    let max_occ = R::simd_occurrence_clamp_max(
        tier,
        combined,
        R::from_f64(terms.occ_retention),
        R::from_f64(terms.occ_limit),
    );
    let year_loss = apply_aggregate_stepwise(terms, combined);
    TrialResult {
        year_loss,
        max_occ_loss: max_occ,
    }
}

/// Analyse one trial under a prepared layer — Algorithm 1 lines 4–29,
/// structured exactly as the paper's four steps.
///
/// The lookup stage runs through [`LossLookup::loss_batch_tier`] at the
/// prepared layer's SIMD tier (one gather per ELT over the whole trial);
/// the per-element accumulation keeps the ELT-outer order, so the result
/// is bit-identical to [`analyse_trial_scalar`].
pub fn analyse_trial<R: Real, L: LossLookup<R>>(
    prepared: &PreparedLayer<R, L>,
    trial: TrialView<'_>,
    workspace: &mut TrialWorkspace<R>,
) -> TrialResult<R> {
    let (combined, ground) = workspace.reset(trial.len());

    // Steps 1 & 2 (lines 4–13): for each covered ELT, gather every
    // event's ground-up loss in one batch, apply the ELT's financial
    // terms, and accumulate the net losses across ELTs into a single
    // combined loss per occurrence. Per element, contributions arrive in
    // ELT order exactly as in the scalar loop. Gather and combine both
    // run at the prepared tier, so `with_simd_tier` pins the whole path.
    for (lookup, &(fx, ret, lim, share)) in prepared.lookups.iter().zip(&prepared.fin_terms) {
        lookup.loss_batch_tier(prepared.simd_tier, trial.events, ground);
        R::simd_accumulate(prepared.simd_tier, combined, ground, fx, ret, lim, share);
    }

    // Steps 3 & 4 (lines 15–29).
    finish_trial(prepared.simd_tier, &prepared.terms, combined)
}

/// The pre-batching scalar hot loop: one [`LossLookup::loss`] call per
/// event per ELT, fused with the financial terms.
///
/// Kept as the oracle the batched paths are tested (and benchmarked)
/// against — [`analyse_trial`] must return bit-identical results.
pub fn analyse_trial_scalar<R: Real, L: LossLookup<R>>(
    prepared: &PreparedLayer<R, L>,
    trial: TrialView<'_>,
    workspace: &mut TrialWorkspace<R>,
) -> TrialResult<R> {
    let (combined, _) = workspace.reset(trial.len());
    for (lookup, &(fx, ret, lim, share)) in prepared.lookups.iter().zip(&prepared.fin_terms) {
        for (d, &event) in trial.events.iter().enumerate() {
            let ground_up = lookup.loss(event);
            let net = share * crate::real::xl_clamp(ground_up * fx, ret, lim);
            combined[d] += net;
        }
    }
    finish_trial(SimdTier::Scalar, &prepared.terms, combined)
}

/// Analyse one trial and attribute the year loss back to the individual
/// occurrences that consumed it.
///
/// The marginal payouts are exactly Algorithm 1's lines 24–26 output
/// (the per-event differences of the clamped cumulative loss) — the
/// quantities reinstatement accounting and seasonal attribution need.
/// Appends `(timestamp, marginal payout)` pairs to `attribution` in
/// event order and returns the trial result.
pub fn analyse_trial_attributed<R: Real, L: LossLookup<R>>(
    prepared: &PreparedLayer<R, L>,
    trial: TrialView<'_>,
    workspace: &mut TrialWorkspace<R>,
    attribution: &mut Vec<(crate::Timestamp, R)>,
) -> TrialResult<R> {
    let (combined, ground) = workspace.reset(trial.len());
    for (lookup, &(fx, ret, lim, share)) in prepared.lookups.iter().zip(&prepared.fin_terms) {
        lookup.loss_batch_tier(prepared.simd_tier, trial.events, ground);
        R::simd_accumulate(prepared.simd_tier, combined, ground, fx, ret, lim, share);
    }
    let result = finish_trial(prepared.simd_tier, &prepared.terms, combined);
    attribution.extend(
        trial
            .times
            .iter()
            .copied()
            .zip(workspace.combined.iter().copied()),
    );
    result
}

/// Analyse every trial of `yet` under a prepared layer, sequentially —
/// implementation (i) of the paper.
///
/// Records the per-trial maximum occurrence loss so OEP curves can be
/// derived alongside AEP.
pub fn analyse_layer<R: Real, L: LossLookup<R>>(
    prepared: &PreparedLayer<R, L>,
    yet: &YearEventTable,
) -> YearLossTable {
    let n = yet.num_trials();
    let mut year_loss = Vec::with_capacity(n);
    let mut max_occ = Vec::with_capacity(n);
    let mut ws = TrialWorkspace::with_capacity(yet.max_events_per_trial());
    for trial in yet.trials() {
        let r = analyse_trial(prepared, trial, &mut ws);
        // lint: allow(push) — once per trial into pre-reserved columns.
        year_loss.push(r.year_loss.to_f64());
        max_occ.push(r.max_occ_loss.to_f64()); // lint: allow(push)
    }
    YearLossTable::with_max_occurrence(year_loss, max_occ)
        .expect("columns built together have equal length")
}

/// [`analyse_layer`] through the pre-batching scalar hot loop
/// ([`analyse_trial_scalar`]) — the oracle and benchmark baseline for
/// the batched and blocked paths.
pub fn analyse_layer_scalar<R: Real, L: LossLookup<R>>(
    prepared: &PreparedLayer<R, L>,
    yet: &YearEventTable,
) -> YearLossTable {
    let n = yet.num_trials();
    let mut year_loss = Vec::with_capacity(n);
    let mut max_occ = Vec::with_capacity(n);
    let mut ws = TrialWorkspace::with_capacity(yet.max_events_per_trial());
    for trial in yet.trials() {
        let r = analyse_trial_scalar(prepared, trial, &mut ws);
        // lint: allow(push) — once per trial into pre-reserved columns.
        year_loss.push(r.year_loss.to_f64());
        max_occ.push(r.max_occ_loss.to_f64()); // lint: allow(push)
    }
    YearLossTable::with_max_occurrence(year_loss, max_occ)
        .expect("columns built together have equal length")
}

/// Scratch for the cache-blocked layer path: the region-sorted gather
/// plan, the L1-sized chunk accumulator, and the flat combined losses of
/// the trial batch in flight. Reused across batches — no steady-state
/// allocation.
#[derive(Debug, Default, Clone)]
pub struct BlockedWorkspace<R> {
    plan: BlockedGather,
    acc: Vec<R>,
    combined: Vec<R>,
    /// Per-stage nanoseconds for the blocked loop, accumulated only
    /// while counter sampling is enabled — the untraced hot path takes
    /// zero instrumentation. The fused gather+combine is attributed to
    /// the lookup stage (the financial stage shows zero here).
    pub stages: ara_trace::StageNanos,
    /// Per-stage hardware-counter deltas, mirroring
    /// [`BlockedWorkspace::stages`].
    pub counters: ara_trace::StageCounters,
}

impl<R: Real> BlockedWorkspace<R> {
    /// Fresh empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Analyse the trials `range` of `yet` with the region-blocked gather,
/// appending per-trial year and max-occurrence losses to `year_loss` /
/// `max_occ`.
///
/// The batch's events are counting-sorted by direct-table region
/// ([`BlockedGather`]), then combined chunk by chunk: within a chunk the
/// accumulation is ELT-outer — each element still receives its per-ELT
/// contributions in layer order — and each element's combined loss is
/// scattered back to its home trial before the (order-sensitive)
/// occurrence and aggregate stages run per trial, in occurrence order.
/// Results are therefore **bit-identical** to [`analyse_trial_scalar`];
/// only the order in which *independent elements* are processed changes.
pub fn analyse_trials_blocked<R: Real>(
    prepared: &PreparedLayer<R, DirectAccessTable<R>>,
    yet: &YearEventTable,
    range: std::ops::Range<usize>,
    ws: &mut BlockedWorkspace<R>,
    year_loss: &mut Vec<f64>,
    max_occ: &mut Vec<f64>,
) {
    // Stage attribution for the blocked loop is per batch and only
    // while counter sampling is on, so the production hot path stays
    // instrumentation-free. Batch setup counts as fetch, the fused
    // gather+combine as lookup, the per-trial epilogue as layer terms.
    let sampling = ara_trace::counters::sampling_enabled();
    let mut lap = ara_trace::LapTimer::start();
    let mut t_prev = if sampling { ara_trace::now_ns() } else { 0 };
    let offsets = yet.offsets();
    let mut first = range.start;
    while first < range.end {
        // Grow the batch trial by trial up to the event budget (a single
        // oversized trial still goes through alone).
        let mut last = first;
        let base = offsets[first] as usize;
        while last < range.end {
            let end = offsets[last + 1] as usize;
            if end - base > MAX_BLOCK_EVENTS && last > first {
                break;
            }
            last += 1;
        }
        let events = &yet.packed_events()[base..offsets[last] as usize];
        let cat = yet.catalogue_size() as usize;
        ws.combined.clear();
        ws.combined.resize(events.len(), R::ZERO);
        if sampling {
            let t = ara_trace::now_ns();
            ws.stages.fetch += t - t_prev;
            t_prev = t;
            ws.counters.fetch.merge(&lap.lap());
        }

        if prepared.region_slots >= cat {
            // Streaming fast path: one region covers the whole catalogue,
            // so the counting sort would be the identity permutation.
            // Combine ELT-outer over the batch in original order — each
            // table streams through the cache once per batch with no
            // plan, pair indirection, or scatter. Chosen by the autotuner
            // on hosts whose caches hold a full table. The fused
            // gather+combine kernel runs at the prepared SIMD tier.
            let ids = crate::simd::event_ids_as_u32(events);
            for (table, &(fx, ret, lim, share)) in prepared.lookups.iter().zip(&prepared.fin_terms)
            {
                R::simd_gather_accumulate(
                    prepared.simd_tier,
                    table.as_slice(),
                    ids,
                    &mut ws.combined,
                    fx,
                    ret,
                    lim,
                    share,
                );
            }
        } else {
            ws.plan.plan(events, cat, prepared.region_slots);
            let chunk = prepared.gather_chunk.max(1);
            ws.acc.clear();
            ws.acc.resize(chunk, R::ZERO);
            for (pairs, slots) in ws
                .plan
                .pairs()
                .chunks(chunk)
                .zip(ws.plan.slots().chunks(chunk))
            {
                let acc = &mut ws.acc[..pairs.len()];
                acc.fill(R::ZERO);
                // ELT-outer over the chunk: the per-element FP order
                // matches the scalar loop; the chunk's table slots sit in
                // the current region, whose slabs stay cache-resident
                // across all ELTs. The contiguous slot stream feeds the
                // fused SIMD kernel directly.
                for (table, &(fx, ret, lim, share)) in
                    prepared.lookups.iter().zip(&prepared.fin_terms)
                {
                    R::simd_gather_accumulate(
                        prepared.simd_tier,
                        table.as_slice(),
                        slots,
                        acc,
                        fx,
                        ret,
                        lim,
                        share,
                    );
                }
                // Scatter each element's finished combined loss home —
                // the only non-sequential write, one per event.
                for (a, p) in acc.iter().zip(pairs) {
                    ws.combined[p.1 as usize] = *a;
                }
            }
        }
        if sampling {
            let t = ara_trace::now_ns();
            ws.stages.lookup += t - t_prev;
            t_prev = t;
            ws.counters.lookup.merge(&lap.lap());
        }

        for i in first..last {
            let lo = offsets[i] as usize - base;
            let hi = offsets[i + 1] as usize - base;
            let r = finish_trial(
                prepared.simd_tier,
                &prepared.terms,
                &mut ws.combined[lo..hi],
            );
            // lint: allow(push) — once per trial into pre-reserved columns.
            year_loss.push(r.year_loss.to_f64());
            max_occ.push(r.max_occ_loss.to_f64()); // lint: allow(push)
        }
        if sampling {
            let t = ara_trace::now_ns();
            ws.stages.layer += t - t_prev;
            t_prev = t;
            ws.counters.layer.merge(&lap.lap());
        }
        first = last;
    }
}

/// [`analyse_layer`] through the cache-blocked gather — bit-identical
/// output, but the hot gather runs region by region instead of trial by
/// trial, so each table slab is loaded into cache once per batch instead
/// of once per touching event.
pub fn analyse_layer_blocked<R: Real>(
    prepared: &PreparedLayer<R, DirectAccessTable<R>>,
    yet: &YearEventTable,
) -> YearLossTable {
    let n = yet.num_trials();
    let mut year_loss = Vec::with_capacity(n);
    let mut max_occ = Vec::with_capacity(n);
    let mut ws = BlockedWorkspace::new();
    analyse_trials_blocked(prepared, yet, 0..n, &mut ws, &mut year_loss, &mut max_occ);
    YearLossTable::with_max_occurrence(year_loss, max_occ)
        .expect("columns built together have equal length")
}

/// Scratch for the staged (instrumented) trial path: the combined-loss
/// buffer plus a fetched-events copy and a flattened ground-up loss
/// matrix, so each of Algorithm 1's four stages runs as its own timed
/// loop. Stage times accumulate into [`StagedWorkspace::stages`] across
/// every trial analysed with the same workspace.
#[derive(Debug, Default, Clone)]
pub struct StagedWorkspace<R> {
    combined: Vec<R>,
    events: Vec<EventId>,
    ground: Vec<R>,
    /// Per-stage nanoseconds accumulated across trials.
    pub stages: ara_trace::StageNanos,
    /// Per-stage hardware-counter deltas accumulated across trials
    /// (empty unless [`ara_trace::counters::enable`] succeeded).
    pub counters: ara_trace::StageCounters,
}

impl<R: Real> StagedWorkspace<R> {
    /// Fresh empty workspace.
    pub fn new() -> Self {
        StagedWorkspace {
            combined: Vec::new(),
            events: Vec::new(),
            ground: Vec::new(),
            stages: ara_trace::StageNanos::ZERO,
            counters: ara_trace::StageCounters::ZERO,
        }
    }

    /// Workspace pre-sized for trials of up to `max_events` occurrences
    /// under a layer covering `num_elts` ELTs.
    pub fn with_capacity(max_events: usize, num_elts: usize) -> Self {
        StagedWorkspace {
            combined: Vec::with_capacity(max_events),
            events: Vec::with_capacity(max_events),
            ground: Vec::with_capacity(max_events * num_elts),
            stages: ara_trace::StageNanos::ZERO,
            counters: ara_trace::StageCounters::ZERO,
        }
    }
}

/// Analyse one trial with per-stage timing — the same arithmetic as
/// [`analyse_trial`] restructured into Algorithm 1's four stages (fetch
/// events, loss lookup, financial terms, layer terms), each bracketed by
/// a clock read whose delta accumulates into `workspace.stages`.
///
/// The result is **bit-identical** to [`analyse_trial`]: the financial
/// stage accumulates per-ELT net losses in exactly the fused loop's
/// floating-point order (ELT-outer, occurrence-inner); only the
/// ground-up lookups are hoisted into their own gather pass.
pub fn analyse_trial_staged<R: Real, L: LossLookup<R>>(
    prepared: &PreparedLayer<R, L>,
    trial: TrialView<'_>,
    workspace: &mut StagedWorkspace<R>,
) -> TrialResult<R> {
    let mut lap = ara_trace::LapTimer::start();
    let t0 = ara_trace::now_ns();

    // Stage 1 — fetch events: read the trial's occurrences out of the
    // YET (the paper's "fetching events from memory").
    workspace.events.clear();
    workspace.events.extend_from_slice(trial.events);
    let len = workspace.events.len();
    let t1 = ara_trace::now_ns();
    workspace.counters.fetch.merge(&lap.lap());

    // Stage 2 — loss lookup: gather every ground-up loss from each
    // covered ELT in one batch call (the hot random-access stage).
    workspace.ground.clear();
    workspace.ground.resize(prepared.num_elts() * len, R::ZERO);
    for (e, lookup) in prepared.lookups.iter().enumerate() {
        let row = &mut workspace.ground[e * len..(e + 1) * len];
        lookup.loss_batch_tier(prepared.simd_tier, &workspace.events, row);
    }
    let t2 = ara_trace::now_ns();
    workspace.counters.lookup.merge(&lap.lap());

    // Stage 3 — financial terms: apply each ELT's terms and accumulate
    // across ELTs, in the same order as the fused loop.
    workspace.combined.clear();
    workspace.combined.resize(len, R::ZERO);
    for (e, &(fx, ret, lim, share)) in prepared.fin_terms.iter().enumerate() {
        let row = &workspace.ground[e * len..(e + 1) * len];
        R::simd_accumulate(
            prepared.simd_tier,
            &mut workspace.combined,
            row,
            fx,
            ret,
            lim,
            share,
        );
    }
    let t3 = ara_trace::now_ns();
    workspace.counters.financial.merge(&lap.lap());

    // Stage 4 — layer terms: occurrence clamp per event, then aggregate
    // terms over the running cumulative loss.
    let max_occ = R::simd_occurrence_clamp_max(
        prepared.simd_tier,
        &mut workspace.combined,
        R::from_f64(prepared.terms.occ_retention),
        R::from_f64(prepared.terms.occ_limit),
    );
    let year_loss = apply_aggregate_stepwise(&prepared.terms, &mut workspace.combined);
    let t4 = ara_trace::now_ns();
    workspace.counters.layer.merge(&lap.lap());

    workspace.stages.fetch += t1 - t0;
    workspace.stages.lookup += t2 - t1;
    workspace.stages.financial += t3 - t2;
    workspace.stages.layer += t4 - t3;

    TrialResult {
        year_loss,
        max_occ_loss: max_occ,
    }
}

/// Analyse every trial of `yet` under a prepared layer with per-stage
/// timing. Returns the YLT (bit-identical to [`analyse_layer`]) together
/// with the accumulated per-stage nanoseconds and hardware-counter
/// deltas (the latter empty unless counter sampling is enabled), and
/// bumps the `lookup.probes` / `trials.analysed` counters when the
/// global recorder is enabled.
pub fn analyse_layer_staged<R: Real, L: LossLookup<R>>(
    prepared: &PreparedLayer<R, L>,
    yet: &YearEventTable,
) -> (
    YearLossTable,
    ara_trace::StageNanos,
    ara_trace::StageCounters,
) {
    let n = yet.num_trials();
    let mut year_loss = Vec::with_capacity(n);
    let mut max_occ = Vec::with_capacity(n);
    let mut ws = StagedWorkspace::with_capacity(yet.max_events_per_trial(), prepared.num_elts());
    for trial in yet.trials() {
        let r = analyse_trial_staged(prepared, trial, &mut ws);
        // lint: allow(push) — once per trial into pre-reserved columns.
        year_loss.push(r.year_loss.to_f64());
        max_occ.push(r.max_occ_loss.to_f64()); // lint: allow(push)
    }
    if ara_trace::recorder().is_enabled() {
        let metrics = ara_trace::metrics();
        metrics
            .counter("lookup.probes")
            .add(prepared.num_elts() as u64 * yet.total_events() as u64);
        metrics.counter("trials.analysed").add(n as u64);
    }
    let ylt = YearLossTable::with_max_occurrence(year_loss, max_occ)
        .expect("columns built together have equal length");
    (ylt, ws.stages, ws.counters)
}

/// Analyse a single trial given raw occurrence data — convenience for
/// tests and doc examples.
pub fn analyse_single<R: Real>(
    inputs: &Inputs,
    layer: &Layer,
    trial_index: usize,
) -> Result<TrialResult<R>, AraError> {
    let prepared = PreparedLayer::<R>::prepare(inputs, layer)?;
    let mut ws = TrialWorkspace::new();
    Ok(analyse_trial(
        &prepared,
        inputs.yet.trial(trial_index),
        &mut ws,
    ))
}

/// Reference lookup directly against the sorted ELTs — used in tests to
/// cross-check prepared direct-access tables.
pub fn reference_event_loss(elts: &[&EventLossTable], event: EventId) -> f64 {
    elts.iter().map(|e| e.terms().apply(e.loss(event))).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elt::EventLoss;
    use crate::financial::FinancialTerms;
    use crate::layer::LayerTerms;
    use crate::yet::YearEventTableBuilder;

    fn elt(pairs: &[(u32, f64)], terms: FinancialTerms) -> EventLossTable {
        EventLossTable::new(
            pairs
                .iter()
                .map(|&(e, l)| EventLoss {
                    event: EventId(e),
                    loss: l,
                })
                .collect(),
            terms,
        )
        .unwrap()
    }

    fn occ(e: u32, t: f32) -> crate::event::EventOccurrence {
        crate::event::EventOccurrence::new(e, t)
    }

    /// Two ELTs, two trials, hand-computed expectations.
    fn fixture() -> (Inputs, Layer) {
        let mut b = YearEventTableBuilder::new(10);
        b.push_trial(&[occ(1, 0.1), occ(2, 0.2), occ(3, 0.3)])
            .unwrap();
        b.push_trial(&[occ(4, 0.5)]).unwrap();
        let yet = b.build();
        let elts = vec![
            elt(&[(1, 100.0), (3, 300.0)], FinancialTerms::identity()),
            elt(&[(2, 50.0), (3, 10.0)], FinancialTerms::identity()),
        ];
        let layer = Layer::new(
            0,
            vec![0, 1],
            LayerTerms {
                occ_retention: 20.0,
                occ_limit: 200.0,
                agg_retention: 50.0,
                agg_limit: 300.0,
            },
        );
        (
            Inputs {
                yet,
                elts,
                layers: vec![layer.clone()],
            },
            layer,
        )
    }

    #[test]
    fn hand_computed_trial() {
        let (inputs, layer) = fixture();
        // Trial 0 combined: e1=100, e2=50, e3=310.
        // Occurrence (ret 20, lim 200): 80, 30, 200.
        // Cumulative: 80, 110, 310. Aggregate (ret 50, lim 300): 30, 60, 260.
        // Year loss = 260.
        let r = analyse_single::<f64>(&inputs, &layer, 0).unwrap();
        assert_eq!(r.year_loss, 260.0);
        assert_eq!(r.max_occ_loss, 200.0);
    }

    #[test]
    fn trial_with_no_covered_events_has_zero_loss() {
        let (inputs, layer) = fixture();
        // Trial 1's only event (4) appears in no ELT.
        let r = analyse_single::<f64>(&inputs, &layer, 1).unwrap();
        assert_eq!(r.year_loss, 0.0);
        assert_eq!(r.max_occ_loss, 0.0);
    }

    #[test]
    fn analyse_layer_produces_full_ylt() {
        let (inputs, layer) = fixture();
        let prepared = PreparedLayer::<f64>::prepare(&inputs, &layer).unwrap();
        let ylt = analyse_layer(&prepared, &inputs.yet);
        assert_eq!(ylt.num_trials(), 2);
        assert_eq!(ylt.year_losses(), &[260.0, 0.0]);
        assert_eq!(ylt.max_occurrence_losses(), Some(&[200.0, 0.0][..]));
    }

    #[test]
    fn financial_terms_are_applied_per_elt() {
        let mut b = YearEventTableBuilder::new(10);
        b.push_trial(&[occ(1, 0.1)]).unwrap();
        let yet = b.build();
        let elts = vec![
            elt(
                &[(1, 100.0)],
                FinancialTerms {
                    fx_rate: 2.0,
                    retention: 50.0,
                    limit: 1000.0,
                    share: 0.5,
                },
            ),
            elt(
                &[(1, 100.0)],
                FinancialTerms {
                    fx_rate: 1.0,
                    retention: 0.0,
                    limit: 30.0,
                    share: 1.0,
                },
            ),
        ];
        let layer = Layer::new(0, vec![0, 1], LayerTerms::unlimited());
        let inputs = Inputs {
            yet,
            elts,
            layers: vec![layer.clone()],
        };
        // ELT0: 0.5 * min(max(200 - 50, 0), 1000) = 75.
        // ELT1: min(100, 30) = 30. Combined = 105.
        let r = analyse_single::<f64>(&inputs, &layer, 0).unwrap();
        assert_eq!(r.year_loss, 105.0);
    }

    #[test]
    fn prepared_layer_accessors() {
        let (inputs, layer) = fixture();
        let prepared = PreparedLayer::<f64>::prepare(&inputs, &layer).unwrap();
        assert_eq!(prepared.num_elts(), 2);
        assert_eq!(prepared.lookups().len(), 2);
        assert_eq!(prepared.financial_terms().len(), 2);
        // Two dense tables over a 10-event catalogue of f64.
        assert_eq!(prepared.memory_bytes(), 2 * 10 * 8);
        assert_eq!(prepared.terms().occ_limit, 200.0);
    }

    #[test]
    fn validate_catches_bad_layers() {
        let (mut inputs, _) = fixture();
        assert!(inputs.validate().is_ok());
        inputs.layers[0].elt_indices = vec![];
        assert_eq!(
            inputs.validate().unwrap_err(),
            AraError::EmptyLayer { layer: 0 }
        );
        inputs.layers[0].elt_indices = vec![9];
        assert_eq!(
            inputs.validate().unwrap_err(),
            AraError::UnknownElt { layer: 0, elt: 9 }
        );
    }

    #[test]
    fn validate_catches_catalogue_overflow() {
        let (mut inputs, _) = fixture();
        inputs
            .elts
            .push(elt(&[(500, 1.0)], FinancialTerms::identity()));
        assert_eq!(
            inputs.validate().unwrap_err(),
            AraError::EventOutOfCatalogue {
                event: 500,
                catalogue_size: 10
            }
        );
    }

    #[test]
    fn total_lookups_counts_layer_elt_event_product() {
        let (inputs, _) = fixture();
        // 1 layer × 2 ELTs × 4 total events.
        assert_eq!(inputs.total_lookups(), 8);
    }

    #[test]
    fn batched_trial_is_bit_identical_to_scalar() {
        let (inputs, layer) = fixture();
        let prepared = PreparedLayer::<f64>::prepare(&inputs, &layer).unwrap();
        let mut batched_ws = TrialWorkspace::new();
        let mut scalar_ws = TrialWorkspace::new();
        for i in 0..inputs.yet.num_trials() {
            let batched = analyse_trial(&prepared, inputs.yet.trial(i), &mut batched_ws);
            let scalar = analyse_trial_scalar(&prepared, inputs.yet.trial(i), &mut scalar_ws);
            assert_eq!(batched, scalar, "trial {i} diverged");
        }
    }

    #[test]
    fn blocked_layer_is_bit_identical_to_scalar() {
        let (inputs, layer) = fixture();
        for (chunk, region) in [(1, 1), (2, 3), (1024, 8192)] {
            let prepared = PreparedLayer::<f64>::prepare(&inputs, &layer)
                .unwrap()
                .with_gather_chunk(chunk)
                .with_region_slots(region);
            let scalar = analyse_layer_scalar(&prepared, &inputs.yet);
            let blocked = analyse_layer_blocked(&prepared, &inputs.yet);
            assert_eq!(scalar.year_losses(), blocked.year_losses());
            assert_eq!(
                scalar.max_occurrence_losses(),
                blocked.max_occurrence_losses()
            );
        }
    }

    #[test]
    fn every_simd_tier_is_bit_identical_across_paths() {
        let (inputs, layer) = fixture();
        let oracle = {
            let p = PreparedLayer::<f64>::prepare(&inputs, &layer).unwrap();
            analyse_layer_scalar(&p, &inputs.yet)
        };
        for tier in SimdTier::available() {
            for (chunk, region) in [(1, 1), (2, 3), (1024, 1 << 20)] {
                let p = PreparedLayer::<f64>::prepare(&inputs, &layer)
                    .unwrap()
                    .with_simd_tier(tier)
                    .with_gather_chunk(chunk)
                    .with_region_slots(region);
                assert_eq!(p.simd_tier(), tier);
                let batched = analyse_layer(&p, &inputs.yet);
                let blocked = analyse_layer_blocked(&p, &inputs.yet);
                assert_eq!(oracle.year_losses(), batched.year_losses(), "{tier:?}");
                assert_eq!(oracle.year_losses(), blocked.year_losses(), "{tier:?}");
                assert_eq!(
                    oracle.max_occurrence_losses(),
                    blocked.max_occurrence_losses(),
                    "{tier:?}"
                );
            }
        }
    }

    /// `with_simd_tier` must pin the *gather* stage too, not only the
    /// combine: the batched paths thread the prepared tier through
    /// `LossLookup::loss_batch_tier`. (Regression: the gather used to
    /// dispatch at the process-wide active tier regardless of the pin,
    /// so a scalar-pinned bench row still ran the native gather.)
    #[test]
    fn batched_paths_thread_pinned_tier_through_gather() {
        use std::sync::atomic::{AtomicU8, Ordering};

        #[derive(Debug, Default)]
        struct TierRecorder(AtomicU8);
        impl LossLookup<f64> for TierRecorder {
            fn loss(&self, _: EventId) -> f64 {
                1.0
            }
            fn memory_bytes(&self) -> usize {
                0
            }
            fn strategy_name(&self) -> &'static str {
                "tier-recorder"
            }
            fn accesses_per_lookup(&self) -> f64 {
                0.0
            }
            fn loss_batch_tier(&self, tier: SimdTier, events: &[EventId], out: &mut [f64]) {
                self.0.store(tier as u8 + 1, Ordering::Relaxed);
                self.loss_batch(events, out);
            }
        }

        let (inputs, layer) = fixture();
        for tier in SimdTier::available() {
            let prepared = PreparedLayer::from_parts(
                vec![TierRecorder::default()],
                vec![FinancialTerms::identity()],
                layer.terms,
            )
            .with_simd_tier(tier);
            let mut ws = TrialWorkspace::new();
            analyse_trial(&prepared, inputs.yet.trial(0), &mut ws);
            assert_eq!(
                prepared.lookups[0].0.load(Ordering::Relaxed),
                tier as u8 + 1,
                "analyse_trial gathered at the wrong tier for {tier:?}"
            );

            prepared.lookups[0].0.store(0, Ordering::Relaxed);
            let mut staged = StagedWorkspace::new();
            analyse_trial_staged(&prepared, inputs.yet.trial(0), &mut staged);
            assert_eq!(
                prepared.lookups[0].0.load(Ordering::Relaxed),
                tier as u8 + 1,
                "analyse_trial_staged gathered at the wrong tier for {tier:?}"
            );
        }
    }

    #[test]
    fn staged_trial_is_bit_identical_to_fused() {
        let (inputs, layer) = fixture();
        let prepared = PreparedLayer::<f64>::prepare(&inputs, &layer).unwrap();
        let mut fused_ws = TrialWorkspace::new();
        let mut staged_ws = StagedWorkspace::new();
        for i in 0..inputs.yet.num_trials() {
            let fused = analyse_trial(&prepared, inputs.yet.trial(i), &mut fused_ws);
            let staged = analyse_trial_staged(&prepared, inputs.yet.trial(i), &mut staged_ws);
            assert_eq!(fused, staged, "trial {i} diverged");
        }
    }

    #[test]
    fn staged_layer_matches_and_accumulates_stage_time() {
        let (inputs, layer) = fixture();
        let prepared = PreparedLayer::<f64>::prepare(&inputs, &layer).unwrap();
        let plain = analyse_layer(&prepared, &inputs.yet);
        let (staged, stages, counters) = analyse_layer_staged(&prepared, &inputs.yet);
        assert_eq!(plain.year_losses(), staged.year_losses());
        assert_eq!(
            plain.max_occurrence_losses(),
            staged.max_occurrence_losses()
        );
        // Two trials, four clock brackets each: some time must register.
        assert!(stages.total() > 0);
        // Counter sampling was never enabled: the deltas stay empty, so
        // the counters can never change what the analysis computes.
        assert!(counters.is_empty());
    }

    #[test]
    fn counter_sampling_never_changes_results() {
        // The degradation contract: with counters off the deltas stay
        // empty, with counters on (host-permitting) they accrue into
        // the stage buckets — and the analysed numbers are identical
        // either way, on both the staged and the blocked path.
        let _g = ara_trace::testing::serial_guard();
        let (inputs, layer) = fixture();
        let prepared = PreparedLayer::<f64>::prepare(&inputs, &layer).unwrap();
        std::env::remove_var("ARA_COUNTERS");
        ara_trace::counters::disable();
        let (plain, _, off_counters) = analyse_layer_staged(&prepared, &inputs.yet);
        assert!(off_counters.is_empty());

        let live = ara_trace::counters::enable();
        let (sampled, _, on_counters) = analyse_layer_staged(&prepared, &inputs.yet);
        let mut ws = BlockedWorkspace::new();
        let n = inputs.yet.num_trials();
        let (mut year, mut occ) = (Vec::new(), Vec::new());
        analyse_trials_blocked(&prepared, &inputs.yet, 0..n, &mut ws, &mut year, &mut occ);
        ara_trace::counters::disable();

        assert_eq!(plain.year_losses(), sampled.year_losses());
        assert_eq!(plain.year_losses(), &year[..]);
        if live {
            // Counters accrue only inside the stage brackets, so each
            // measured stage's share lands in its own bucket and the
            // totals are non-zero.
            use ara_trace::CounterKind;
            assert!(on_counters.total().get(CounterKind::Cycles).unwrap_or(0) > 0);
            assert!(ws.counters.total().get(CounterKind::Cycles).unwrap_or(0) > 0);
            assert!(ws.stages.total() > 0, "blocked stage time accrued");
            // The blocked path fuses gather+combine into the lookup
            // stage; financial must stay untouched.
            assert!(ws.counters.financial.is_empty());
            assert_eq!(ws.stages.financial, 0);
        } else {
            assert!(on_counters.is_empty(), "denied host: no deltas");
            assert!(ws.counters.is_empty());
            assert_eq!(ws.stages.total(), 0);
        }
    }

    #[test]
    fn f32_analysis_close_to_f64() {
        let (inputs, layer) = fixture();
        let r64 = analyse_single::<f64>(&inputs, &layer, 0).unwrap();
        let r32 = analyse_single::<f32>(&inputs, &layer, 0).unwrap();
        assert!((r64.year_loss - r32.year_loss as f64).abs() < 1e-3);
    }

    #[test]
    fn reference_event_loss_sums_across_elts() {
        let (inputs, _) = fixture();
        let refs: Vec<&EventLossTable> = inputs.elts.iter().collect();
        assert_eq!(reference_event_loss(&refs, EventId(3)), 310.0);
        assert_eq!(reference_event_loss(&refs, EventId(7)), 0.0);
    }

    mod properties {
        use super::*;
        use crate::lookup::{CuckooHashTable, SortedLookup, StdHashLookup};
        use proptest::prelude::*;

        #[derive(Debug, Clone)]
        struct Scenario {
            yet_trials: Vec<Vec<u32>>,
            elts: Vec<Vec<(u32, f64)>>,
            terms: LayerTerms,
        }

        fn scenario() -> impl Strategy<Value = Scenario> {
            let trial = prop::collection::vec(0u32..50, 0..20);
            let trials = prop::collection::vec(trial, 1..8);
            let elt_pairs = prop::collection::btree_map(0u32..50, 0.0..1000.0f64, 0..30)
                .prop_map(|m| m.into_iter().collect::<Vec<_>>());
            let elts = prop::collection::vec(elt_pairs, 1..4);
            let term = prop_oneof![Just(0.0f64), 0.0..500.0f64];
            let limit = prop_oneof![Just(f64::INFINITY), 0.0..500.0f64];
            (trials, elts, term.clone(), limit.clone(), term, limit).prop_map(
                |(yet_trials, elts, or, ol, ar, al)| Scenario {
                    yet_trials,
                    elts,
                    terms: LayerTerms {
                        occ_retention: or,
                        occ_limit: ol,
                        agg_retention: ar,
                        agg_limit: al,
                    },
                },
            )
        }

        fn build(s: &Scenario) -> (Inputs, Layer) {
            let mut b = YearEventTableBuilder::new(50);
            for t in &s.yet_trials {
                let occs: Vec<_> = t
                    .iter()
                    .enumerate()
                    .map(|(i, &e)| occ(e, i as f32 / 32.0))
                    .collect();
                b.push_trial(&occs).unwrap();
            }
            let yet = b.build();
            let elts: Vec<_> = s
                .elts
                .iter()
                .map(|pairs| elt(pairs, FinancialTerms::identity()))
                .collect();
            let layer = Layer::new(0, (0..elts.len()).collect(), s.terms);
            (
                Inputs {
                    yet,
                    elts,
                    layers: vec![layer.clone()],
                },
                layer,
            )
        }

        proptest! {
            /// Every lookup structure must produce the identical YLT: the
            /// algorithm is parametric in the lookup strategy (Section
            /// III's choice is about speed, not semantics).
            #[test]
            fn all_lookup_structures_agree(s in scenario()) {
                let (inputs, layer) = build(&s);
                let fin: Vec<_> =
                    layer.elt_indices.iter().map(|&i| *inputs.elts[i].terms()).collect();

                let direct = PreparedLayer::<f64>::prepare(&inputs, &layer).unwrap();
                let ylt_direct = analyse_layer(&direct, &inputs.yet);

                let sorted = PreparedLayer::from_parts(
                    layer.elt_indices.iter()
                        .map(|&i| SortedLookup::<f64>::from_elt(&inputs.elts[i]))
                        .collect(),
                    fin.clone(),
                    layer.terms,
                );
                let ylt_sorted = analyse_layer(&sorted, &inputs.yet);

                let hashed = PreparedLayer::from_parts(
                    layer.elt_indices.iter()
                        .map(|&i| StdHashLookup::<f64>::from_elt(&inputs.elts[i]))
                        .collect(),
                    fin.clone(),
                    layer.terms,
                );
                let ylt_hashed = analyse_layer(&hashed, &inputs.yet);

                let cuckoo = PreparedLayer::from_parts(
                    layer.elt_indices.iter()
                        .map(|&i| CuckooHashTable::<f64>::from_elt(&inputs.elts[i]).unwrap())
                        .collect(),
                    fin,
                    layer.terms,
                );
                let ylt_cuckoo = analyse_layer(&cuckoo, &inputs.yet);

                prop_assert_eq!(ylt_direct.year_losses(), ylt_sorted.year_losses());
                prop_assert_eq!(ylt_direct.year_losses(), ylt_hashed.year_losses());
                prop_assert_eq!(ylt_direct.year_losses(), ylt_cuckoo.year_losses());
            }

            /// Year losses respect the aggregate limit and non-negativity,
            /// and max-occurrence losses respect the occurrence limit.
            #[test]
            fn outputs_respect_bounds(s in scenario()) {
                let (inputs, layer) = build(&s);
                let prepared = PreparedLayer::<f64>::prepare(&inputs, &layer).unwrap();
                let ylt = analyse_layer(&prepared, &inputs.yet);
                for &l in ylt.year_losses() {
                    prop_assert!(l >= 0.0);
                    prop_assert!(l <= s.terms.agg_limit + 1e-9);
                }
                for &m in ylt.max_occurrence_losses().unwrap() {
                    prop_assert!(m >= 0.0);
                    prop_assert!(m <= s.terms.occ_limit + 1e-9);
                }
            }

            /// The batched fused path and the cache-blocked path must be
            /// bit-identical to the pre-batching scalar loop at both
            /// precisions, for arbitrary chunk/region sizes — the f32 run
            /// is the sensitive one, where any reassociation would show.
            #[test]
            fn batched_and_blocked_bit_identical_to_scalar(
                s in scenario(),
                chunk in 1usize..40,
                region in 1usize..70,
            ) {
                let (inputs, layer) = build(&s);
                let p64 = PreparedLayer::<f64>::prepare(&inputs, &layer)
                    .unwrap()
                    .with_gather_chunk(chunk)
                    .with_region_slots(region);
                let scalar64 = analyse_layer_scalar(&p64, &inputs.yet);
                let batched64 = analyse_layer(&p64, &inputs.yet);
                let blocked64 = analyse_layer_blocked(&p64, &inputs.yet);
                prop_assert_eq!(scalar64.year_losses(), batched64.year_losses());
                prop_assert_eq!(scalar64.year_losses(), blocked64.year_losses());
                prop_assert_eq!(
                    scalar64.max_occurrence_losses(),
                    blocked64.max_occurrence_losses()
                );

                let p32 = PreparedLayer::<f32>::prepare(&inputs, &layer)
                    .unwrap()
                    .with_gather_chunk(chunk)
                    .with_region_slots(region);
                let scalar32 = analyse_layer_scalar(&p32, &inputs.yet);
                let batched32 = analyse_layer(&p32, &inputs.yet);
                let blocked32 = analyse_layer_blocked(&p32, &inputs.yet);
                prop_assert_eq!(scalar32.year_losses(), batched32.year_losses());
                prop_assert_eq!(scalar32.year_losses(), blocked32.year_losses());
                prop_assert_eq!(
                    scalar32.max_occurrence_losses(),
                    blocked32.max_occurrence_losses()
                );
            }

            /// The staged (instrumented) path must be bit-identical to
            /// the fused reference path at both precisions — the f32 run
            /// is the sensitive one, where any reassociation would show.
            #[test]
            fn staged_path_bit_identical(s in scenario()) {
                let (inputs, layer) = build(&s);
                let p64 = PreparedLayer::<f64>::prepare(&inputs, &layer).unwrap();
                let plain64 = analyse_layer(&p64, &inputs.yet);
                let (staged64, _, _) = analyse_layer_staged(&p64, &inputs.yet);
                prop_assert_eq!(plain64.year_losses(), staged64.year_losses());

                let p32 = PreparedLayer::<f32>::prepare(&inputs, &layer).unwrap();
                let plain32 = analyse_layer(&p32, &inputs.yet);
                let (staged32, _, _) = analyse_layer_staged(&p32, &inputs.yet);
                prop_assert_eq!(plain32.year_losses(), staged32.year_losses());
                prop_assert_eq!(
                    plain32.max_occurrence_losses(),
                    staged32.max_occurrence_losses()
                );
            }

            /// f32 analysis tracks f64 within single-precision tolerance.
            #[test]
            fn f32_tracks_f64(s in scenario()) {
                let (inputs, layer) = build(&s);
                let p64 = PreparedLayer::<f64>::prepare(&inputs, &layer).unwrap();
                let p32 = PreparedLayer::<f32>::prepare(&inputs, &layer).unwrap();
                let y64 = analyse_layer(&p64, &inputs.yet);
                let y32 = analyse_layer(&p32, &inputs.yet);
                let rel = y64.max_rel_diff(&y32).unwrap();
                prop_assert!(rel < 1e-4, "relative diff {rel} too large");
            }
        }
    }
}
