//! End-to-end checks of the perf subsystem at the library level: the
//! manifest and history records must survive a serialise → parse round
//! trip through `ara_trace::json`, the store must shrug off corrupt
//! lines, and the gate must move both ways on records it just produced.

use ara_bench::perf::{
    any_regression, compare_runs, group_runs, run_suite, BaselineStore, GatePolicy, Preset,
    RunManifest, RunRecord, Verdict,
};
use ara_trace::json;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ara-perf-roundtrip-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn manifest_round_trips_and_keeps_its_fingerprint() {
    let m = RunManifest::collect("small", 5);
    let doc = json::parse(&m.to_json()).expect("manifest serialises to valid JSON");
    let back = RunManifest::from_json(&doc).expect("manifest re-parses");
    assert_eq!(back, m);
    assert_eq!(back.host_fingerprint(), m.host_fingerprint());
    assert_eq!(back.host_fingerprint().len(), 16, "16-hex FNV fingerprint");
}

#[test]
fn suite_records_survive_the_store_and_gate_both_ways() {
    // The suite toggles the global trace recorder and reads the
    // ARA_PERF_PERTURB hook, so everything here runs under one guard.
    let _g = ara_trace::testing::serial_guard();
    ara_trace::testing::reset();
    let store = BaselineStore::open(tmp("gate.jsonl"));
    std::fs::remove_file(store.path()).ok();

    // Baseline: one real small-preset suite run.
    std::env::remove_var("ARA_PERF_PERTURB");
    let baseline = run_suite(Preset::Small, 3);
    assert_eq!(baseline.len(), 5, "one record per engine");
    for r in &baseline {
        assert_eq!(r.run_id, baseline[0].run_id, "records share one run id");
        assert_eq!(r.samples_secs.len(), 3, "every repeat sample retained");
        assert_eq!(r.manifest.preset, "small");
        assert!(r.samples_secs.iter().all(|&s| s > 0.0 && s.is_finite()));
    }
    store.append(&baseline).unwrap();

    // Candidate: a second clean run must pass the gate...
    let clean = run_suite(Preset::Small, 3);
    assert_ne!(clean[0].run_id, baseline[0].run_id);
    store.append(&clean).unwrap();

    // ...and a 20x perturbed run must fail it, naming the benchmark.
    std::env::set_var("ARA_PERF_PERTURB", "engine.sequential-cpu:20.0");
    let slowed = run_suite(Preset::Small, 3);
    std::env::remove_var("ARA_PERF_PERTURB");
    store.append(&slowed).unwrap();

    let loaded = store.load();
    assert!(
        loaded.warnings.is_empty(),
        "warnings: {:?}",
        loaded.warnings
    );
    assert_eq!(loaded.records.len(), 15, "3 runs x 5 engines");

    let fp = baseline[0].manifest.host_fingerprint();
    let runs = group_runs(&loaded.records, &fp);
    assert_eq!(runs.len(), 3, "history accumulated three distinct runs");

    // A wide allowance so host noise can never fail the clean pass; the
    // 20x injection clears any sane threshold.
    let policy = GatePolicy {
        allowed_regression_pct: 50.0,
        ..GatePolicy::default()
    };
    let clean_cmp = compare_runs(&runs[0].1, &runs[1].1, &policy);
    assert_eq!(clean_cmp.len(), 5);
    assert!(
        !any_regression(&clean_cmp),
        "clean rerun regressed: {clean_cmp:?}"
    );

    let slow_cmp = compare_runs(&runs[0].1, &runs[2].1, &policy);
    let regressed: Vec<_> = slow_cmp
        .iter()
        .filter(|c| c.verdict == Verdict::Regressed)
        .collect();
    assert_eq!(regressed.len(), 1, "exactly the perturbed benchmark fails");
    assert_eq!(regressed[0].benchmark, "engine.sequential-cpu");
    assert!(regressed[0].ratio > 5.0, "ratio {}", regressed[0].ratio);
    ara_trace::testing::reset();
}

#[test]
fn history_records_round_trip_through_json_and_skip_garbage() {
    let store = BaselineStore::open(tmp("garbage.jsonl"));
    std::fs::remove_file(store.path()).ok();
    let record = RunRecord {
        run_id: "r-rt".to_string(),
        benchmark: "engine.gpu-basic".to_string(),
        recorded_unix: 1_700_000_000,
        samples_secs: vec![0.031, 0.029, 0.030],
        stage_secs: [0.002, 0.021, 0.004, 0.003],
        stage_counters: None,
        manifest: RunManifest::collect("bench", 3),
    };

    // Line-level round trip through the shared JSON parser.
    let doc = json::parse(&record.to_json()).expect("record line is valid JSON");
    assert_eq!(RunRecord::from_json(&doc).unwrap(), record);

    // Store-level: good lines bracketing garbage all survive a load.
    store.append(std::slice::from_ref(&record)).unwrap();
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(store.path())
        .unwrap();
    writeln!(f, "not json at all").unwrap();
    writeln!(f, "{{\"type\":\"run\"}}").unwrap();
    drop(f);
    store.append(std::slice::from_ref(&record)).unwrap();

    let loaded = store.load();
    assert_eq!(loaded.records.len(), 2);
    assert_eq!(loaded.warnings.len(), 2);
    for (i, w) in loaded.warnings.iter().enumerate() {
        assert!(
            w.contains("skipped malformed history line"),
            "warning {i} unexpected: {w}"
        );
    }
    assert_eq!(loaded.records[0], loaded.records[1]);
    assert!((loaded.records[0].median_secs() - 0.030).abs() < 1e-12);
}
