//! Run provenance: everything a future reader needs to interpret (and
//! trust, or distrust) a timing.

use ara_trace::json::{self, Json};
use simt_sim::model::autotune::{
    cpu_model_name, tune_host, CacheModel, HostTuning, HostWorkload, SimdIsa,
};

/// Provenance of one benchmark run, embedded in every `BENCH_*.json`
/// sidecar and every [`super::RunRecord`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunManifest {
    /// `git rev-parse --short HEAD`, or `"unknown"` outside a checkout.
    pub git_sha: String,
    /// `rustc --version`, or `"unknown"`.
    pub rustc: String,
    /// Operating system family (`std::env::consts::OS`).
    pub os: String,
    /// CPU marketing name from `/proc/cpuinfo`.
    pub cpu_model: String,
    /// Available worker threads on the host.
    pub threads: usize,
    /// Detected cache hierarchy (L1d / L2 / LLC bytes).
    pub cache: CacheModel,
    /// The autotuned hot-path knobs for this host × workload.
    pub tuning: HostTuning,
    /// Scenario preset the run used (`"small"`, `"bench"`, `"bin:<name>"`).
    pub preset: String,
    /// Timed repeats per measurement.
    pub repeats: usize,
}

/// FNV-1a 64-bit hash, the workspace's stock dependency-free hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Run `cmd args…` and return its trimmed stdout, or `None` on any
/// failure (missing binary, sandbox, non-zero exit).
fn capture(cmd: &str, args: &[&str]) -> Option<String> {
    let out = std::process::Command::new(cmd).args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    let s = String::from_utf8_lossy(&out.stdout).trim().to_string();
    (!s.is_empty()).then_some(s)
}

impl RunManifest {
    /// Collect provenance for a run at `preset` with `repeats` timed
    /// repeats, autotuning against `workload`. Every probe degrades to
    /// `"unknown"` rather than failing: a manifest must never be the
    /// reason a benchmark doesn't run.
    pub fn collect_for(preset: &str, repeats: usize, workload: &HostWorkload) -> RunManifest {
        let cache = CacheModel::detect();
        RunManifest {
            git_sha: std::env::var("ARA_GIT_SHA")
                .ok()
                .or_else(|| capture("git", &["rev-parse", "--short", "HEAD"]))
                .unwrap_or_else(|| "unknown".to_string()),
            rustc: capture("rustc", &["--version"]).unwrap_or_else(|| "unknown".to_string()),
            os: std::env::consts::OS.to_string(),
            cpu_model: cpu_model_name(),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            cache,
            tuning: tune_host(&cache, workload),
            preset: preset.to_string(),
            repeats,
        }
    }

    /// [`RunManifest::collect_for`] against the standard bench-scale
    /// workload shape (10 k trials × 100 events × 15 ELTs, f64).
    pub fn collect(preset: &str, repeats: usize) -> RunManifest {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::collect_for(
            preset,
            repeats,
            &HostWorkload {
                catalogue_size: 200_000,
                num_elts: 15,
                num_trials: 10_000,
                events_per_trial: 100,
                value_bytes: 8,
                num_threads: threads,
            },
        )
    }

    /// Stable identity of the *hardware and vector path* this run
    /// executed on: hash of CPU model, thread count, cache hierarchy,
    /// OS, and the SIMD ISA + lane width the hot path dispatched to.
    /// Two runs compare only when their fingerprints match — timings
    /// from different machines, or from the same machine running
    /// different vector paths (e.g. under `ARA_SIMD=force-scalar`), are
    /// incommensurable.
    pub fn host_fingerprint(&self) -> String {
        let key = format!(
            "{}|{}|{}|{}|{}|{}|{}|{}",
            self.cpu_model,
            self.threads,
            self.cache.l1d_bytes,
            self.cache.l2_bytes,
            self.cache.llc_bytes,
            self.os,
            self.tuning.simd_isa.name(),
            self.tuning.simd_lanes,
        );
        format!("{:016x}", fnv1a(key.as_bytes()))
    }

    /// Serialise as a JSON object (one line, no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"git_sha\":{},\"rustc\":{},\"os\":{},\"cpu_model\":{},\"threads\":{},\
             \"cache\":{{\"l1d\":{},\"l2\":{},\"llc\":{}}},\
             \"autotune\":{{\"gather_chunk\":{},\"region_slots\":{},\"schedule_grain\":{},\"blocks_per_run\":{},\
             \"simd_isa\":{},\"simd_lanes\":{}}},\
             \"preset\":{},\"repeats\":{},\"fingerprint\":{}}}",
            json::string(&self.git_sha),
            json::string(&self.rustc),
            json::string(&self.os),
            json::string(&self.cpu_model),
            self.threads,
            self.cache.l1d_bytes,
            self.cache.l2_bytes,
            self.cache.llc_bytes,
            self.tuning.gather_chunk,
            self.tuning.region_slots,
            self.tuning.schedule_grain,
            self.tuning.blocks_per_run,
            json::string(self.tuning.simd_isa.name()),
            self.tuning.simd_lanes,
            json::string(&self.preset),
            self.repeats,
            json::string(&self.host_fingerprint()),
        )
    }

    /// Re-parse a manifest from a [`Json`] object (as produced by
    /// [`RunManifest::to_json`] and read back with
    /// [`ara_trace::json::parse`]).
    pub fn from_json(doc: &Json) -> Result<RunManifest, String> {
        let s = |key: &str| -> Result<String, String> {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("manifest missing string field `{key}`"))
        };
        let n = |obj: &Json, key: &str| -> Result<usize, String> {
            obj.get(key)
                .and_then(Json::as_f64)
                .map(|v| v as usize)
                .ok_or_else(|| format!("manifest missing numeric field `{key}`"))
        };
        let cache = doc
            .get("cache")
            .ok_or_else(|| "manifest missing `cache`".to_string())?;
        let tune = doc
            .get("autotune")
            .ok_or_else(|| "manifest missing `autotune`".to_string())?;
        Ok(RunManifest {
            git_sha: s("git_sha")?,
            rustc: s("rustc")?,
            os: s("os")?,
            cpu_model: s("cpu_model")?,
            threads: n(doc, "threads")?,
            cache: CacheModel {
                l1d_bytes: n(cache, "l1d")?,
                l2_bytes: n(cache, "l2")?,
                llc_bytes: n(cache, "llc")?,
            },
            tuning: HostTuning {
                gather_chunk: n(tune, "gather_chunk")?,
                region_slots: n(tune, "region_slots")?,
                schedule_grain: n(tune, "schedule_grain")?,
                blocks_per_run: n(tune, "blocks_per_run")? as u32,
                // Manifests written before the SIMD dispatch existed ran
                // the scalar path; default accordingly so old history
                // still parses (its fingerprint will not match a SIMD
                // host's, which is the point).
                simd_isa: tune
                    .get("simd_isa")
                    .and_then(Json::as_str)
                    .and_then(SimdIsa::from_name)
                    .unwrap_or(SimdIsa::Scalar),
                simd_lanes: n(tune, "simd_lanes").unwrap_or(1),
            },
            preset: s("preset")?,
            repeats: n(doc, "repeats")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_round_trips_through_the_trace_parser() {
        let m = RunManifest::collect("small", 3);
        let doc = json::parse(&m.to_json()).expect("manifest is valid JSON");
        let back = RunManifest::from_json(&doc).expect("manifest re-parses");
        assert_eq!(back, m);
        assert_eq!(
            doc.get("fingerprint").and_then(Json::as_str),
            Some(m.host_fingerprint().as_str())
        );
    }

    #[test]
    fn fingerprint_is_hardware_keyed() {
        let a = RunManifest::collect("small", 3);
        let mut b = a.clone();
        // Software provenance must not move the fingerprint…
        b.git_sha = "deadbeef".to_string();
        b.preset = "bench".to_string();
        b.repeats = 9;
        assert_eq!(a.host_fingerprint(), b.host_fingerprint());
        // …but hardware must.
        b.threads += 1;
        assert_ne!(a.host_fingerprint(), b.host_fingerprint());
        assert_eq!(a.host_fingerprint().len(), 16);
    }

    #[test]
    fn fingerprint_is_simd_path_keyed() {
        let a = RunManifest::collect("small", 3);
        let mut b = a.clone();
        // The same hardware running a different vector path must not
        // compare against SIMD baselines.
        b.tuning.simd_isa = SimdIsa::Scalar;
        b.tuning.simd_lanes = 1;
        if a.tuning.simd_isa != SimdIsa::Scalar {
            assert_ne!(a.host_fingerprint(), b.host_fingerprint());
        }
        let mut c = a.clone();
        c.tuning.simd_lanes += 1;
        assert_ne!(a.host_fingerprint(), c.host_fingerprint());
    }

    #[test]
    fn manifest_json_records_simd_path() {
        let m = RunManifest::collect("small", 3);
        let doc = json::parse(&m.to_json()).unwrap();
        let tune = doc.get("autotune").unwrap();
        assert_eq!(
            tune.get("simd_isa").and_then(Json::as_str),
            Some(m.tuning.simd_isa.name())
        );
        assert_eq!(
            tune.get("simd_lanes").and_then(Json::as_f64),
            Some(m.tuning.simd_lanes as f64)
        );
    }

    #[test]
    fn pre_simd_manifests_parse_as_scalar() {
        let m = RunManifest::collect("small", 3);
        // Strip the SIMD fields to mimic a manifest written before the
        // dispatch existed.
        let legacy = m
            .to_json()
            .replace(
                &format!(
                    ",\"simd_isa\":\"{}\",\"simd_lanes\":{}",
                    m.tuning.simd_isa.name(),
                    m.tuning.simd_lanes
                ),
                "",
            )
            .replace(&m.host_fingerprint(), "0000000000000000");
        let back = RunManifest::from_json(&json::parse(&legacy).unwrap()).unwrap();
        assert_eq!(back.tuning.simd_isa, SimdIsa::Scalar);
        assert_eq!(back.tuning.simd_lanes, 1);
    }

    #[test]
    fn from_json_rejects_truncated_manifests() {
        let doc = json::parse(r#"{"git_sha":"x","rustc":"r"}"#).unwrap();
        let err = RunManifest::from_json(&doc).unwrap_err();
        assert!(err.contains("missing"), "{err}");
    }

    #[test]
    fn probes_never_panic() {
        let m = RunManifest::collect("bin:test", 1);
        assert!(!m.cpu_model.is_empty());
        assert!(m.threads >= 1);
        assert!(m.tuning.gather_chunk >= 256);
    }
}
