//! # ara-perf — run provenance, baselines, and statistical gating
//!
//! The paper's contribution is a performance *trajectory* (337.47 s
//! sequential → 4.35 s on four GPUs); this module is what lets the repo
//! defend its own trajectory. Four pieces:
//!
//! * [`RunManifest`] — who/where/how provenance (git sha, rustc, CPU
//!   model and cache hierarchy, thread count, autotuned knobs, scenario
//!   preset) embedded in every `BENCH_*.json` sidecar and every history
//!   record. Baselines are keyed by its
//!   [`host fingerprint`](RunManifest::host_fingerprint) so a laptop
//!   never gates against a CI runner.
//! * [`BaselineStore`] — an append-only `perf/history.jsonl` of
//!   [`RunRecord`]s, each retaining *all* repeat samples (not just the
//!   min) plus the per-stage breakdown, so later comparisons have a
//!   distribution and an attribution to work with.
//! * [`compare`] — bootstrap confidence intervals (via
//!   [`ara_metrics::bootstrap`]) on the per-repeat samples; a regression
//!   is only confirmed when the candidate's CI clears the baseline's CI
//!   by more than the allowed-regression threshold *and* the noise
//!   floor. Each confirmed regression names its worst-moving stage.
//! * [`suite`] — the fixed five-engine benchmark suite that `ara perf
//!   record` / `gate` run in-process at the `--small` or bench preset.

pub mod compare;
pub mod history;
pub mod manifest;
pub mod render;
pub mod suite;

pub use compare::{
    any_regression, compare_records, compare_runs, Comparison, CounterDelta, GatePolicy, Verdict,
};
pub use history::{
    baseline_miss_diagnostics, group_runs, BaselineStore, HistoryLoad, RunRecord,
};
pub use manifest::RunManifest;
pub use suite::{run_suite, Preset};
