//! Statistical run comparison: bootstrap CIs over the repeat samples,
//! with a noise band, so the gate fails only on regressions the data can
//! actually support.
//!
//! The rule: bootstrap a confidence interval on each side's *median*
//! wall time. A regression is confirmed only when the candidate's lower
//! CI bound clears the baseline's upper bound scaled by the
//! allowed-regression threshold — i.e. the interval itself excludes the
//! allowed slowdown — *and* the median moved by more than an absolute
//! noise floor (sub-millisecond scheduler jitter can never fail a
//! build on its own). Symmetrically, an improvement is only claimed
//! when the intervals separate the other way.

use super::history::RunRecord;
use ara_metrics::bootstrap::{bootstrap_ci, ConfidenceInterval};
use ara_metrics::stats;

/// Stage labels, in [`RunRecord::stage_secs`] order.
pub const STAGE_LABELS: [&str; 4] = [
    ara_trace::stage_names::FETCH,
    ara_trace::stage_names::LOOKUP,
    ara_trace::stage_names::FINANCIAL,
    ara_trace::stage_names::LAYER,
];

/// What the gate tolerates before failing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatePolicy {
    /// Allowed median slowdown, in percent. The default (25%) is
    /// deliberately tolerant: wall-clock on shared runners wobbles
    /// double-digit percent between back-to-back runs, and the gate's
    /// job is to catch 2×-class accidents (an un-gated recorder, an
    /// accidentally quadratic loop), not to certify single-digit
    /// deltas. Tighten with `--threshold` on a quiet dedicated host.
    pub allowed_regression_pct: f64,
    /// Absolute noise floor in seconds: median deltas below this never
    /// gate, whatever the intervals say (default 500 µs).
    pub noise_floor_secs: f64,
    /// Bootstrap confidence level (default 0.95).
    pub confidence: f64,
    /// Bootstrap replicates per side (default 400).
    pub replicates: usize,
}

impl Default for GatePolicy {
    fn default() -> Self {
        GatePolicy {
            allowed_regression_pct: 25.0,
            noise_floor_secs: 5e-4,
            confidence: 0.95,
            replicates: 400,
        }
    }
}

/// Outcome of one benchmark's baseline-vs-candidate comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The intervals overlap the allowed band: no statistically
    /// supported movement beyond the threshold.
    Pass,
    /// The candidate's CI excludes the allowed regression: fail.
    Regressed,
    /// The candidate's CI sits wholly below the baseline's.
    Improved,
    /// The benchmark has no baseline on this host yet.
    NoBaseline,
}

/// The worst-moving stage of a comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct StageDelta {
    /// Canonical stage name.
    pub stage: &'static str,
    /// Baseline stage seconds.
    pub baseline_secs: f64,
    /// Candidate stage seconds.
    pub candidate_secs: f64,
}

impl StageDelta {
    /// Candidate minus baseline, seconds.
    pub fn delta_secs(&self) -> f64 {
        self.candidate_secs - self.baseline_secs
    }
}

/// The worst-moving hardware counter of a comparison: the counter kind
/// whose run total moved by the largest relative factor between the
/// baseline and candidate traced passes.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterDelta {
    /// Canonical counter name (e.g. `"llc_misses"`).
    pub counter: &'static str,
    /// Baseline run total of that counter.
    pub baseline: u64,
    /// Candidate run total of that counter.
    pub candidate: u64,
}

impl CounterDelta {
    /// Candidate over baseline (∞-safe: a zero baseline with a non-zero
    /// candidate reports the candidate count itself as the factor).
    pub fn ratio(&self) -> f64 {
        if self.baseline > 0 {
            self.candidate as f64 / self.baseline as f64
        } else {
            self.candidate as f64
        }
    }
}

/// One benchmark's full comparison record.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Benchmark name.
    pub benchmark: String,
    /// Bootstrap CI of the baseline median (absent for [`Verdict::NoBaseline`]).
    pub baseline: Option<ConfidenceInterval>,
    /// Bootstrap CI of the candidate median.
    pub candidate: ConfidenceInterval,
    /// Candidate median over baseline median (1.0 when no baseline).
    pub ratio: f64,
    /// The verdict under the policy used.
    pub verdict: Verdict,
    /// The stage whose absolute time moved the most, when stage data is
    /// present on both sides.
    pub worst_stage: Option<StageDelta>,
    /// The hardware counter whose run total moved by the largest
    /// relative factor, when both sides carry counter data.
    pub worst_counter: Option<CounterDelta>,
}

/// Deterministic per-benchmark bootstrap seed (FNV-1a of the name), so
/// reruns of the gate are reproducible.
fn seed_for(benchmark: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in benchmark.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Bootstrap CI of a sample's median under `policy`.
pub fn median_ci(samples: &[f64], policy: &GatePolicy, seed: u64) -> ConfidenceInterval {
    bootstrap_ci(
        samples,
        |s| stats::quantile(s, 0.5),
        policy.replicates,
        policy.confidence,
        seed,
    )
}

/// Compare one benchmark's candidate record against its baseline.
pub fn compare_records(
    baseline: &RunRecord,
    candidate: &RunRecord,
    policy: &GatePolicy,
) -> Comparison {
    let seed = seed_for(&candidate.benchmark);
    let base_ci = median_ci(&baseline.samples_secs, policy, seed);
    let cand_ci = median_ci(&candidate.samples_secs, policy, seed.wrapping_add(1));
    let allowed = 1.0 + policy.allowed_regression_pct / 100.0;
    let delta = cand_ci.estimate - base_ci.estimate;
    let verdict = if cand_ci.lo > base_ci.hi * allowed && delta > policy.noise_floor_secs {
        Verdict::Regressed
    } else if cand_ci.hi < base_ci.lo && -delta > policy.noise_floor_secs {
        Verdict::Improved
    } else {
        Verdict::Pass
    };
    let worst_stage = worst_stage(baseline, candidate);
    let worst_counter = worst_counter(baseline, candidate);
    Comparison {
        benchmark: candidate.benchmark.clone(),
        baseline: Some(base_ci),
        candidate: cand_ci,
        ratio: if base_ci.estimate > 0.0 {
            cand_ci.estimate / base_ci.estimate
        } else {
            1.0
        },
        verdict,
        worst_stage,
        worst_counter,
    }
}

/// The stage whose absolute seconds moved the most between two records,
/// `None` when neither side carries stage data.
fn worst_stage(baseline: &RunRecord, candidate: &RunRecord) -> Option<StageDelta> {
    if baseline.stage_secs.iter().all(|&s| s == 0.0)
        && candidate.stage_secs.iter().all(|&s| s == 0.0)
    {
        return None;
    }
    (0..4)
        .map(|i| StageDelta {
            stage: STAGE_LABELS[i],
            baseline_secs: baseline.stage_secs[i],
            candidate_secs: candidate.stage_secs[i],
        })
        .max_by(|a, b| {
            a.delta_secs()
                .abs()
                .partial_cmp(&b.delta_secs().abs())
                .expect("finite stage seconds")
        })
}

/// The counter kind whose run total moved by the largest relative
/// factor between two records, `None` unless both sides carry counter
/// data with at least one kind measured on both.
fn worst_counter(baseline: &RunRecord, candidate: &RunRecord) -> Option<CounterDelta> {
    let base = baseline.stage_counters.as_ref()?.total();
    let cand = candidate.stage_counters.as_ref()?.total();
    ara_trace::CounterKind::ALL
        .into_iter()
        .filter_map(|kind| {
            let (b, c) = (base.get(kind)?, cand.get(kind)?);
            Some(CounterDelta {
                counter: kind.name(),
                baseline: b,
                candidate: c,
            })
        })
        .max_by(|a, b| {
            let movement = |d: &CounterDelta| {
                let r = d.ratio();
                // Symmetric: a 4x drop moves as much as a 4x rise.
                if r > 0.0 && r < 1.0 {
                    1.0 / r
                } else {
                    r
                }
            };
            movement(a)
                .partial_cmp(&movement(b))
                .expect("finite counter ratios")
        })
}

/// Compare a whole candidate run against a whole baseline run, matched
/// by benchmark name. Candidate benchmarks absent from the baseline get
/// [`Verdict::NoBaseline`]; baseline-only benchmarks are dropped (a
/// removed benchmark is not a perf regression).
pub fn compare_runs(
    baseline: &[&RunRecord],
    candidate: &[&RunRecord],
    policy: &GatePolicy,
) -> Vec<Comparison> {
    candidate
        .iter()
        .map(
            |cand| match baseline.iter().find(|b| b.benchmark == cand.benchmark) {
                Some(base) => compare_records(base, cand, policy),
                None => Comparison {
                    benchmark: cand.benchmark.clone(),
                    baseline: None,
                    candidate: median_ci(&cand.samples_secs, policy, seed_for(&cand.benchmark)),
                    ratio: 1.0,
                    verdict: Verdict::NoBaseline,
                    worst_stage: None,
                    worst_counter: None,
                },
            },
        )
        .collect()
}

/// True when any comparison regressed — the gate's exit status.
pub fn any_regression(comparisons: &[Comparison]) -> bool {
    comparisons.iter().any(|c| c.verdict == Verdict::Regressed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::RunManifest;

    fn record(benchmark: &str, samples: &[f64], stages: [f64; 4]) -> RunRecord {
        RunRecord {
            run_id: "r-test".to_string(),
            benchmark: benchmark.to_string(),
            recorded_unix: 0,
            samples_secs: samples.to_vec(),
            stage_secs: stages,
            stage_counters: None,
            manifest: RunManifest::collect("small", samples.len()),
        }
    }

    fn with_counters(mut r: RunRecord, cycles: u64, llc_misses: u64) -> RunRecord {
        use ara_trace::{CounterKind, StageCounters};
        let mut c = StageCounters::ZERO;
        c.lookup.set(CounterKind::Cycles, cycles);
        c.lookup.set(CounterKind::LlcMisses, llc_misses);
        r.stage_counters = Some(c);
        r
    }

    #[test]
    fn identical_samples_pass() {
        let base = record("e", &[0.010, 0.011, 0.0105], [0.1, 0.6, 0.2, 0.1]);
        let cand = record("e", &[0.0105, 0.010, 0.011], [0.1, 0.6, 0.2, 0.1]);
        let c = compare_records(&base, &cand, &GatePolicy::default());
        assert_eq!(c.verdict, Verdict::Pass);
        assert!((c.ratio - 1.0).abs() < 0.2);
    }

    #[test]
    fn clear_slowdown_regresses_and_names_the_stage() {
        let base = record("e", &[0.010, 0.011, 0.0105], [0.01, 0.06, 0.02, 0.01]);
        // 2× slower, driven by the lookup stage.
        let cand = record("e", &[0.021, 0.022, 0.0215], [0.01, 0.17, 0.02, 0.01]);
        let c = compare_records(&base, &cand, &GatePolicy::default());
        assert_eq!(c.verdict, Verdict::Regressed);
        assert!(c.ratio > 1.8, "ratio {}", c.ratio);
        let stage = c.worst_stage.as_ref().expect("stage data present");
        assert_eq!(stage.stage, ara_trace::stage_names::LOOKUP);
        assert!(stage.delta_secs() > 0.0);
        assert!(any_regression(&[c]));
    }

    #[test]
    fn worst_counter_names_the_largest_relative_mover() {
        let base = with_counters(
            record("e", &[0.010, 0.011, 0.0105], [0.01, 0.06, 0.02, 0.01]),
            1_000_000,
            1_000,
        );
        // Cycles doubled; LLC misses grew 9x — misses win.
        let cand = with_counters(
            record("e", &[0.021, 0.022, 0.0215], [0.01, 0.17, 0.02, 0.01]),
            2_000_000,
            9_000,
        );
        let c = compare_records(&base, &cand, &GatePolicy::default());
        assert_eq!(c.verdict, Verdict::Regressed);
        let counter = c.worst_counter.as_ref().expect("counter data present");
        assert_eq!(counter.counter, "llc_misses");
        assert_eq!((counter.baseline, counter.candidate), (1_000, 9_000));
        assert!((counter.ratio() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn missing_counters_on_either_side_yield_no_attribution() {
        let base = record("e", &[0.010, 0.011], [0.0; 4]);
        let cand = with_counters(record("e", &[0.010, 0.011], [0.0; 4]), 100, 10);
        let policy = GatePolicy::default();
        assert!(compare_records(&base, &cand, &policy).worst_counter.is_none());
        assert!(compare_records(&cand, &base, &policy).worst_counter.is_none());
        // Both sides counterless: likewise none.
        assert!(compare_records(&base, &base, &policy).worst_counter.is_none());
    }

    #[test]
    fn clear_speedup_is_improved() {
        let base = record("e", &[0.020, 0.021, 0.0205], [0.0; 4]);
        let cand = record("e", &[0.010, 0.011, 0.0105], [0.0; 4]);
        let c = compare_records(&base, &cand, &GatePolicy::default());
        assert_eq!(c.verdict, Verdict::Improved);
        assert!(c.worst_stage.is_none(), "no stage data → no attribution");
    }

    #[test]
    fn sub_noise_floor_deltas_never_gate() {
        // 50% relative slowdown but only 50 µs absolute: scheduler
        // jitter territory, must pass.
        let base = record("e", &[0.0001, 0.0001, 0.0001], [0.0; 4]);
        let cand = record("e", &[0.00015, 0.00015, 0.00015], [0.0; 4]);
        let c = compare_records(&base, &cand, &GatePolicy::default());
        assert_eq!(c.verdict, Verdict::Pass);
    }

    #[test]
    fn slowdown_within_allowed_band_passes() {
        // 5% slower with tight samples: inside the 25% allowance.
        let base = record("e", &[0.0100, 0.0100, 0.0100], [0.0; 4]);
        let cand = record("e", &[0.0105, 0.0105, 0.0105], [0.0; 4]);
        let c = compare_records(&base, &cand, &GatePolicy::default());
        assert_eq!(c.verdict, Verdict::Pass);
    }

    #[test]
    fn comparisons_are_deterministic() {
        let base = record("e", &[0.010, 0.012, 0.011, 0.013], [0.0; 4]);
        let cand = record("e", &[0.014, 0.013, 0.015, 0.012], [0.0; 4]);
        let a = compare_records(&base, &cand, &GatePolicy::default());
        let b = compare_records(&base, &cand, &GatePolicy::default());
        assert_eq!(a, b);
    }

    #[test]
    fn run_matching_handles_new_benchmarks() {
        let base = record("old", &[0.01, 0.01, 0.01], [0.0; 4]);
        let cand_old = record("old", &[0.01, 0.01, 0.01], [0.0; 4]);
        let cand_new = record("new", &[0.02, 0.02, 0.02], [0.0; 4]);
        let out = compare_runs(&[&base], &[&cand_old, &cand_new], &GatePolicy::default());
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].verdict, Verdict::Pass);
        assert_eq!(out[1].verdict, Verdict::NoBaseline);
        assert!(!any_regression(&out));
    }
}
