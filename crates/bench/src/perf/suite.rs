//! The fixed benchmark suite behind `ara perf record` / `gate`: all five
//! engine implementations over a deterministic scenario, with warmup,
//! all repeat samples retained, and a traced pass for stage attribution.

use super::history::{new_run_id, RunRecord};
use super::manifest::RunManifest;
use ara_core::Inputs;
use ara_engine::{
    Engine, GpuBasicEngine, GpuOptimizedEngine, MultiGpuEngine, MulticoreEngine, SequentialEngine,
};
use ara_workload::{Scenario, ScenarioShape};
use simt_sim::model::autotune::HostWorkload;

/// Scenario preset the suite runs at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// 2 k trials × 100 events — the CI smoke scale (`--small`).
    Small,
    /// 10 k trials × 100 events — the standard measured bench scale.
    Bench,
}

impl Preset {
    /// CLI token (`"small"` / `"bench"`).
    pub fn name(&self) -> &'static str {
        match self {
            Preset::Small => "small",
            Preset::Bench => "bench",
        }
    }

    /// The scenario shape of this preset.
    pub fn shape(&self) -> ScenarioShape {
        match self {
            Preset::Small => ScenarioShape {
                num_trials: 2_000,
                events_per_trial: 100.0,
                catalogue_size: 200_000,
                num_elts: 15,
                records_per_elt: 2_000,
                num_layers: 1,
                elts_per_layer: (15, 15),
            },
            Preset::Bench => ScenarioShape::bench(),
        }
    }

    /// The equivalent [`HostWorkload`] for the autotune fields of the
    /// manifest.
    pub fn host_workload(&self) -> HostWorkload {
        let shape = self.shape();
        HostWorkload {
            catalogue_size: shape.catalogue_size as usize,
            num_elts: shape.num_elts,
            num_trials: shape.num_trials,
            events_per_trial: shape.events_per_trial as usize,
            value_bytes: 8,
            num_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// Deterministic inputs for this preset.
    pub fn inputs(&self) -> Inputs {
        Scenario::new(self.shape(), 0xa5a5)
            .build()
            .expect("preset scenarios generate valid inputs")
    }
}

/// The five suite engines, in paper order.
fn engines() -> Vec<Box<dyn Engine>> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    vec![
        Box::new(SequentialEngine::<f64>::new()),
        Box::new(MulticoreEngine::<f64>::new(threads)),
        Box::new(GpuBasicEngine::new()),
        Box::new(GpuOptimizedEngine::<f32>::new()),
        Box::new(MultiGpuEngine::<f32>::new(4)),
    ]
}

/// Parse the `ARA_PERF_PERTURB` test hook: either a bare factor
/// (applied to every benchmark) or comma-separated `name:factor` pairs.
/// Returns the factor for `benchmark` (1.0 when unset). This exists so
/// the gate's failure path is testable without actually slowing the
/// machine down — see DESIGN.md.
fn perturb_factor(benchmark: &str, spec: Option<&str>) -> f64 {
    let Some(spec) = spec else { return 1.0 };
    for part in spec.split(',') {
        let part = part.trim();
        match part.split_once(':') {
            Some((name, factor)) => {
                if name == benchmark {
                    if let Ok(f) = factor.parse::<f64>() {
                        return f;
                    }
                }
            }
            None => {
                if let Ok(f) = part.parse::<f64>() {
                    return f;
                }
            }
        }
    }
    1.0
}

/// Run the full suite: for each engine one untimed warmup, `repeats`
/// timed repeats (all samples kept), then one traced run for the
/// span-derived stage breakdown. Returns one [`RunRecord`] per engine,
/// all sharing a fresh run id and manifest.
pub fn run_suite(preset: Preset, repeats: usize) -> Vec<RunRecord> {
    let repeats = repeats.max(1);
    let inputs = preset.inputs();
    let manifest = RunManifest::collect_for(preset.name(), repeats, &preset.host_workload());
    let run_id = new_run_id();
    let recorded_unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let perturb = std::env::var("ARA_PERF_PERTURB").ok();

    let mut records = Vec::new();
    for engine in engines() {
        let benchmark = format!("engine.{}", engine.name());
        // Warmup: fault in lazily-allocated pages, populate caches.
        let _ = engine.analyse(&inputs).expect("suite inputs are valid");
        let factor = perturb_factor(&benchmark, perturb.as_deref());
        let samples: Vec<f64> = (0..repeats)
            .map(|_| {
                let t0 = std::time::Instant::now();
                let _ = engine.analyse(&inputs).expect("suite inputs are valid");
                t0.elapsed().as_secs_f64() * factor
            })
            .collect();
        // One traced pass for stage attribution — separate from the
        // timed repeats so instrumentation never pollutes the samples.
        // Hardware counters ride the same pass; on denied hosts enable()
        // is a no-op and the record simply carries no counters.
        ara_trace::recorder().enable(ara_trace::Level::Info);
        let _counters_live = ara_trace::counters::enable();
        let out = engine.analyse(&inputs).expect("suite inputs are valid");
        ara_trace::counters::disable();
        let _ = ara_trace::recorder().drain();
        ara_trace::recorder().disable();
        let stage_secs = out
            .measured
            .map(|m| [m.fetch, m.lookup, m.financial, m.layer])
            .unwrap_or([0.0; 4]);
        // Registry adoption: the same samples that go into the history
        // record land in the per-engine labelled histogram, so an
        // `ara obs report` straight after a suite run shows the
        // distribution the gate judged. (Benchmark names are runtime
        // strings; the engine name is the static label.)
        let labels = ara_engine::engine_labels(engine.name());
        let m = ara_trace::metrics();
        m.counter_with("bench.runs", labels).incr();
        for s in &samples {
            m.histogram_with("bench.sample_ns", labels)
                .record((s * 1e9) as u64);
        }
        records.push(RunRecord {
            run_id: run_id.clone(),
            benchmark,
            recorded_unix,
            samples_secs: samples,
            stage_secs,
            stage_counters: out.counters.filter(|c| !c.is_empty()),
            manifest: manifest.clone(),
        });
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perturb_spec_parsing() {
        assert_eq!(perturb_factor("engine.sequential", None), 1.0);
        assert_eq!(perturb_factor("engine.sequential", Some("1.5")), 1.5);
        assert_eq!(
            perturb_factor("engine.multicore", Some("engine.multicore:2.0")),
            2.0
        );
        assert_eq!(
            perturb_factor("engine.sequential", Some("engine.multicore:2.0")),
            1.0
        );
        assert_eq!(
            perturb_factor(
                "engine.gpu-basic",
                Some("engine.multicore:2.0, engine.gpu-basic:3.0")
            ),
            3.0
        );
        assert_eq!(perturb_factor("engine.sequential", Some("garbage")), 1.0);
    }

    #[test]
    fn presets_parse_and_shape() {
        assert_eq!(Preset::Small.name(), "small");
        assert_eq!(Preset::Small.shape().num_trials, 2_000);
        assert_eq!(Preset::Bench.shape().num_trials, 10_000);
        assert!(Preset::Small.host_workload().num_threads >= 1);
    }
}
