//! The append-only baseline store: `perf/history.jsonl`.
//!
//! One JSON object per line, one line per benchmark per recorded run.
//! Append-only so concurrent writers can't corrupt each other beyond a
//! single line — and a single corrupt line is *skipped with a warning*,
//! never a panic: a perf history that bricks the perf tooling would be
//! worse than no history.

use super::manifest::RunManifest;
use ara_trace::json::{self, Json};
use std::path::{Path, PathBuf};

/// The timings of one benchmark within one recorded run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Groups the records of a single `ara perf record` invocation.
    pub run_id: String,
    /// Benchmark name, e.g. `"engine.multi-gpu"`.
    pub benchmark: String,
    /// Unix seconds when the run was recorded.
    pub recorded_unix: u64,
    /// Every timed repeat, wall seconds, in execution order. *All*
    /// samples are retained (not just the min) so later comparisons
    /// have a distribution to bootstrap over.
    pub samples_secs: Vec<f64>,
    /// Per-stage seconds `[fetch, lookup, financial, layer]` from the
    /// span-derived breakdown (summed across workers for parallel
    /// engines), attributing *where* a regression lives.
    pub stage_secs: [f64; 4],
    /// Per-stage hardware-counter deltas from the traced pass, when the
    /// host's PMU was readable during recording. `None` on
    /// counter-denied hosts and in history lines written before counter
    /// sampling existed — both parse and compare fine, they just carry
    /// no counter attribution.
    pub stage_counters: Option<ara_trace::StageCounters>,
    /// Provenance of the run.
    pub manifest: RunManifest,
}

impl RunRecord {
    /// Median of the repeat samples (0.0 when empty — never expected).
    pub fn median_secs(&self) -> f64 {
        if self.samples_secs.is_empty() {
            return 0.0;
        }
        ara_metrics::stats::quantile(&self.samples_secs, 0.5)
    }

    /// Serialise as a single JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut samples = String::from("[");
        for (i, s) in self.samples_secs.iter().enumerate() {
            if i > 0 {
                samples.push(',');
            }
            samples.push_str(&json::number(*s));
        }
        samples.push(']');
        // The counters field is written only when measured, so histories
        // recorded on counter-denied hosts are byte-identical to
        // pre-counter histories.
        let counters = match &self.stage_counters {
            Some(c) => format!("\"stage_counters\":{},", c.to_json()),
            None => String::new(),
        };
        format!(
            "{{\"type\":\"run\",\"run_id\":{},\"benchmark\":{},\"recorded_unix\":{},\
             \"samples_secs\":{},\"stage_secs\":{{\"fetch\":{},\"lookup\":{},\"financial\":{},\"layer\":{}}},\
             {counters}\"manifest\":{}}}",
            json::string(&self.run_id),
            json::string(&self.benchmark),
            self.recorded_unix,
            samples,
            json::number(self.stage_secs[0]),
            json::number(self.stage_secs[1]),
            json::number(self.stage_secs[2]),
            json::number(self.stage_secs[3]),
            self.manifest.to_json(),
        )
    }

    /// Re-parse one history line.
    pub fn from_json(doc: &Json) -> Result<RunRecord, String> {
        let s = |key: &str| -> Result<String, String> {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("record missing string field `{key}`"))
        };
        let samples = doc
            .get("samples_secs")
            .and_then(Json::as_array)
            .ok_or_else(|| "record missing `samples_secs`".to_string())?
            .iter()
            .map(|v| v.as_f64().ok_or_else(|| "non-numeric sample".to_string()))
            .collect::<Result<Vec<f64>, String>>()?;
        let stages = doc
            .get("stage_secs")
            .ok_or_else(|| "record missing `stage_secs`".to_string())?;
        let stage = |key: &str| -> Result<f64, String> {
            stages
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("record missing stage `{key}`"))
        };
        Ok(RunRecord {
            run_id: s("run_id")?,
            benchmark: s("benchmark")?,
            recorded_unix: doc
                .get("recorded_unix")
                .and_then(Json::as_f64)
                .ok_or_else(|| "record missing `recorded_unix`".to_string())?
                as u64,
            samples_secs: samples,
            stage_secs: [
                stage("fetch")?,
                stage("lookup")?,
                stage("financial")?,
                stage("layer")?,
            ],
            stage_counters: doc
                .get("stage_counters")
                .map(ara_trace::StageCounters::from_json),
            manifest: RunManifest::from_json(
                doc.get("manifest")
                    .ok_or_else(|| "record missing `manifest`".to_string())?,
            )?,
        })
    }
}

/// Result of loading a history file: the parseable records plus one
/// warning per line that wasn't.
#[derive(Debug, Default)]
pub struct HistoryLoad {
    /// Every record that parsed, in file (append) order.
    pub records: Vec<RunRecord>,
    /// One human-readable warning per skipped line.
    pub warnings: Vec<String>,
}

/// The append-only run-history file.
#[derive(Debug, Clone)]
pub struct BaselineStore {
    path: PathBuf,
}

impl BaselineStore {
    /// The default history path: `$ARA_PERF_HISTORY` if set, else
    /// `perf/history.jsonl` under the current directory.
    pub fn default_path() -> PathBuf {
        std::env::var_os("ARA_PERF_HISTORY")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("perf/history.jsonl"))
    }

    /// A store at an explicit path.
    pub fn open(path: impl Into<PathBuf>) -> BaselineStore {
        BaselineStore { path: path.into() }
    }

    /// The file this store appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append records (one line each), creating parent directories and
    /// the file as needed.
    pub fn append(&self, records: &[RunRecord]) -> std::io::Result<()> {
        use std::io::Write as _;
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        for r in records {
            writeln!(file, "{}", r.to_json())?;
        }
        Ok(())
    }

    /// Load every record. A missing file is an empty history; a corrupt
    /// line is skipped and reported in [`HistoryLoad::warnings`].
    pub fn load(&self) -> HistoryLoad {
        let mut out = HistoryLoad::default();
        let text = match std::fs::read_to_string(&self.path) {
            Ok(t) => t,
            Err(_) => return out,
        };
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match json::parse(line).and_then(|doc| RunRecord::from_json(&doc)) {
                Ok(r) => out.records.push(r),
                Err(e) => out.warnings.push(format!(
                    "{}:{}: skipped malformed history line ({e})",
                    self.path.display(),
                    i + 1
                )),
            }
        }
        out
    }
}

/// Group records by `run_id`, keeping only runs whose host fingerprint
/// matches, ordered oldest → newest (by recorded time, then run id).
pub fn group_runs<'a>(
    records: &'a [RunRecord],
    fingerprint: &str,
) -> Vec<(String, Vec<&'a RunRecord>)> {
    let mut runs: Vec<(String, Vec<&RunRecord>)> = Vec::new();
    for r in records {
        if r.manifest.host_fingerprint() != fingerprint {
            continue;
        }
        match runs.iter_mut().find(|(id, _)| *id == r.run_id) {
            Some((_, group)) => group.push(r),
            None => runs.push((r.run_id.clone(), vec![r])),
        }
    }
    runs.sort_by_key(|(id, group)| {
        (
            group.iter().map(|r| r.recorded_unix).min().unwrap_or(0),
            id.clone(),
        )
    });
    runs
}

/// The fingerprint-relevant manifest fields that differ between the
/// current host and a recorded one, as `field recorded -> current`
/// strings (empty when the fingerprints should match).
fn manifest_diff(current: &RunManifest, recorded: &RunManifest) -> Vec<String> {
    let mut diffs = Vec::new();
    let mut field = |name: &str, rec: String, cur: String| {
        if rec != cur {
            diffs.push(format!("{name} {rec} -> {cur}"));
        }
    };
    field(
        "cpu_model",
        recorded.cpu_model.clone(),
        current.cpu_model.clone(),
    );
    field(
        "threads",
        recorded.threads.to_string(),
        current.threads.to_string(),
    );
    field(
        "l1d_bytes",
        recorded.cache.l1d_bytes.to_string(),
        current.cache.l1d_bytes.to_string(),
    );
    field(
        "l2_bytes",
        recorded.cache.l2_bytes.to_string(),
        current.cache.l2_bytes.to_string(),
    );
    field(
        "llc_bytes",
        recorded.cache.llc_bytes.to_string(),
        current.cache.llc_bytes.to_string(),
    );
    field("os", recorded.os.clone(), current.os.clone());
    field(
        "simd_isa",
        recorded.tuning.simd_isa.name().to_string(),
        current.tuning.simd_isa.name().to_string(),
    );
    field(
        "simd_lanes",
        recorded.tuning.simd_lanes.to_string(),
        current.tuning.simd_lanes.to_string(),
    );
    diffs
}

/// Explain a baseline miss: when a non-empty history contains *no*
/// record matching the current host's fingerprint, render both sides —
/// the current fingerprint and every distinct recorded one, with the
/// manifest fields that moved — instead of leaving the user with a bare
/// "no baseline". Returns `None` when there is nothing to explain (an
/// empty history, or at least one record does match).
pub fn baseline_miss_diagnostics(records: &[RunRecord], current: &RunManifest) -> Option<String> {
    use std::fmt::Write as _;
    let fingerprint = current.host_fingerprint();
    if records.is_empty()
        || records
            .iter()
            .any(|r| r.manifest.host_fingerprint() == fingerprint)
    {
        return None;
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "  history holds {} record(s), none matching this host's fingerprint {fingerprint}:",
        records.len(),
    );
    let mut seen: Vec<String> = Vec::new();
    for r in records {
        let fp = r.manifest.host_fingerprint();
        if seen.contains(&fp) {
            continue;
        }
        let diffs = manifest_diff(current, &r.manifest);
        let detail = if diffs.is_empty() {
            "no fingerprint field differs (recorded before a fingerprint format change?)"
                .to_string()
        } else {
            diffs.join(", ")
        };
        let _ = writeln!(out, "    recorded fingerprint {fp}: {detail}");
        seen.push(fp);
    }
    Some(out)
}

/// A fresh run id: unix seconds, pid, and a process-local counter (so
/// two suite runs within the same second stay distinct runs).
pub fn new_run_id() -> String {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    format!("r{unix:x}-{}-{n}", std::process::id())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(benchmark: &str, run_id: &str, at: u64, samples: &[f64]) -> RunRecord {
        RunRecord {
            run_id: run_id.to_string(),
            benchmark: benchmark.to_string(),
            recorded_unix: at,
            samples_secs: samples.to_vec(),
            stage_secs: [0.1, 0.6, 0.2, 0.1],
            stage_counters: None,
            manifest: RunManifest::collect("small", samples.len()),
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ara-perf-history-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn record_json_round_trips() {
        let r = record("engine.sequential", "r1", 1000, &[0.011, 0.0105, 0.012]);
        let doc = json::parse(&r.to_json()).expect("valid JSON line");
        let back = RunRecord::from_json(&doc).expect("record re-parses");
        assert_eq!(back, r);
        assert!((r.median_secs() - 0.011).abs() < 1e-12);
    }

    #[test]
    fn append_accumulates_and_loads_in_order() {
        let store = BaselineStore::open(tmp("accumulate.jsonl"));
        std::fs::remove_file(store.path()).ok();
        store
            .append(&[record("a", "r1", 10, &[1.0]), record("b", "r1", 10, &[2.0])])
            .unwrap();
        store.append(&[record("a", "r2", 20, &[1.1])]).unwrap();
        let loaded = store.load();
        assert!(loaded.warnings.is_empty());
        assert_eq!(loaded.records.len(), 3);
        assert_eq!(loaded.records[2].run_id, "r2");
        let fp = loaded.records[0].manifest.host_fingerprint();
        let runs = group_runs(&loaded.records, &fp);
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].0, "r1");
        assert_eq!(runs[0].1.len(), 2);
        assert_eq!(runs[1].0, "r2");
    }

    #[test]
    fn corrupt_lines_are_skipped_with_a_warning() {
        let store = BaselineStore::open(tmp("corrupt.jsonl"));
        std::fs::remove_file(store.path()).ok();
        store.append(&[record("a", "r1", 10, &[1.0])]).unwrap();
        // Simulate a torn write and a wrong-schema line.
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(store.path())
            .unwrap();
        writeln!(f, "{{\"type\":\"run\",\"benchmark\":\"tor").unwrap();
        writeln!(f, "{{\"type\":\"run\",\"benchmark\":42}}").unwrap();
        drop(f);
        store.append(&[record("b", "r2", 20, &[2.0])]).unwrap();
        let loaded = store.load();
        assert_eq!(loaded.records.len(), 2, "good lines survive");
        assert_eq!(loaded.warnings.len(), 2, "one warning per bad line");
        assert!(loaded.warnings[0].contains("skipped malformed"));
    }

    #[test]
    fn missing_file_is_an_empty_history() {
        let store = BaselineStore::open(tmp("never-created.jsonl"));
        std::fs::remove_file(store.path()).ok();
        let loaded = store.load();
        assert!(loaded.records.is_empty() && loaded.warnings.is_empty());
    }

    #[test]
    fn counter_records_round_trip_and_legacy_lines_parse_as_none() {
        use ara_trace::{CounterKind, CounterValues, StageCounters};
        let mut r = record("engine.sequential", "r1", 1000, &[0.011]);
        // Legacy/denied-host lines carry no field at all.
        assert!(!r.to_json().contains("stage_counters"));
        let mut counters = StageCounters::ZERO;
        counters.lookup.set(CounterKind::Cycles, 12_345);
        counters.lookup.set(CounterKind::LlcMisses, 678);
        counters.fetch = CounterValues::ZERO;
        r.stage_counters = Some(counters);
        let doc = json::parse(&r.to_json()).expect("valid JSON line");
        let back = RunRecord::from_json(&doc).expect("record re-parses");
        assert_eq!(back, r);
        assert_eq!(
            back.stage_counters.unwrap().lookup.get(CounterKind::Cycles),
            Some(12_345)
        );
    }

    #[test]
    fn baseline_miss_diagnostics_name_the_differing_fields() {
        let mine = RunManifest::collect("small", 3);
        let mut foreign = record("a", "r1", 10, &[1.0]);
        foreign.manifest.threads = mine.threads + 3;
        foreign.manifest.os = "plan9".to_string();
        // Nothing to explain: empty history, or a matching record.
        assert!(baseline_miss_diagnostics(&[], &mine).is_none());
        let matching = record("a", "r0", 5, &[1.0]);
        assert!(baseline_miss_diagnostics(&[matching, foreign.clone()], &mine).is_none());
        // All-foreign history: both fingerprints and the moved fields.
        let text = baseline_miss_diagnostics(&[foreign.clone()], &mine).expect("diagnosed");
        assert!(text.contains(&mine.host_fingerprint()), "{text}");
        assert!(
            text.contains(&foreign.manifest.host_fingerprint()),
            "{text}"
        );
        assert!(
            text.contains(&format!("threads {} -> {}", mine.threads + 3, mine.threads)),
            "{text}"
        );
        assert!(text.contains("os plan9 -> "), "{text}");
        // Duplicate fingerprints are reported once.
        let text = baseline_miss_diagnostics(&[foreign.clone(), foreign], &mine).unwrap();
        assert_eq!(text.matches("recorded fingerprint").count(), 1, "{text}");
    }

    #[test]
    fn group_runs_filters_foreign_fingerprints() {
        let mine = record("a", "r1", 10, &[1.0]);
        let mut foreign = record("a", "r2", 20, &[9.0]);
        foreign.manifest.threads += 1;
        let records = vec![mine.clone(), foreign];
        let runs = group_runs(&records, &mine.manifest.host_fingerprint());
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].0, "r1");
    }

    #[test]
    fn run_ids_are_well_formed_and_unique() {
        let a = new_run_id();
        let b = new_run_id();
        assert!(a.starts_with('r') && a.contains('-'));
        assert_ne!(a, b, "same-second run ids must stay distinct");
    }
}
