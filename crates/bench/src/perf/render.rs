//! Renderers for `ara perf` output: human summary, markdown table,
//! machine JSON, and the history trajectory view.

use super::compare::{Comparison, GatePolicy, Verdict};
use super::history::RunRecord;
use ara_trace::json;
use std::fmt::Write as _;

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

fn verdict_tag(v: Verdict) -> &'static str {
    match v {
        Verdict::Pass => "pass",
        Verdict::Regressed => "REGRESSED",
        Verdict::Improved => "improved",
        Verdict::NoBaseline => "no-baseline",
    }
}

/// Human-readable comparison summary, one block per benchmark.
pub fn summary(comparisons: &[Comparison], policy: &GatePolicy) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "perf gate: allowed regression {:.0}%, noise floor {}, {:.0}% CI",
        policy.allowed_regression_pct,
        fmt_secs(policy.noise_floor_secs),
        policy.confidence * 100.0
    );
    for c in comparisons {
        let _ = match &c.baseline {
            Some(base) => writeln!(
                out,
                "  {:<24} {:>10} -> {:>10}  x{:.3}  [{}]",
                c.benchmark,
                fmt_secs(base.estimate),
                fmt_secs(c.candidate.estimate),
                c.ratio,
                verdict_tag(c.verdict),
            ),
            None => writeln!(
                out,
                "  {:<24} {:>10} -> {:>10}  [{}]",
                c.benchmark,
                "(none)",
                fmt_secs(c.candidate.estimate),
                verdict_tag(c.verdict),
            ),
        };
        if c.verdict == Verdict::Regressed {
            if let Some(stage) = &c.worst_stage {
                let _ = writeln!(
                    out,
                    "      worst-moving stage: {} ({} -> {}, {:+.1}ms)",
                    stage.stage,
                    fmt_secs(stage.baseline_secs),
                    fmt_secs(stage.candidate_secs),
                    stage.delta_secs() * 1e3,
                );
            }
            if let Some(counter) = &c.worst_counter {
                let _ = writeln!(
                    out,
                    "      worst-moving counter: {} ({} -> {}, x{:.2})",
                    counter.counter,
                    counter.baseline,
                    counter.candidate,
                    counter.ratio(),
                );
            }
        }
    }
    let regressed = comparisons
        .iter()
        .filter(|c| c.verdict == Verdict::Regressed)
        .count();
    let _ = writeln!(
        out,
        "  {} benchmark(s), {} regressed",
        comparisons.len(),
        regressed
    );
    out
}

/// GitHub-flavoured markdown comparison table.
pub fn markdown(comparisons: &[Comparison]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| benchmark | baseline (median) | candidate (median) | ratio | verdict | worst stage |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|");
    for c in comparisons {
        let base = c
            .baseline
            .map(|b| fmt_secs(b.estimate))
            .unwrap_or_else(|| "—".to_string());
        let stage = c
            .worst_stage
            .as_ref()
            .map(|s| format!("{} ({:+.1}ms)", s.stage, s.delta_secs() * 1e3))
            .unwrap_or_else(|| "—".to_string());
        let _ = writeln!(
            out,
            "| {} | {} | {} | x{:.3} | {} | {} |",
            c.benchmark,
            base,
            fmt_secs(c.candidate.estimate),
            c.ratio,
            verdict_tag(c.verdict),
            stage,
        );
    }
    out
}

/// Machine-readable comparison report (a JSON array, round-trippable
/// through [`ara_trace::json::parse`]).
pub fn json_report(comparisons: &[Comparison]) -> String {
    let mut out = String::from("[");
    for (i, c) in comparisons.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let base = match &c.baseline {
            Some(b) => format!(
                "{{\"estimate\":{},\"lo\":{},\"hi\":{}}}",
                json::number(b.estimate),
                json::number(b.lo),
                json::number(b.hi)
            ),
            None => "null".to_string(),
        };
        let stage = match &c.worst_stage {
            Some(s) => format!(
                "{{\"stage\":{},\"baseline_secs\":{},\"candidate_secs\":{}}}",
                json::string(s.stage),
                json::number(s.baseline_secs),
                json::number(s.candidate_secs)
            ),
            None => "null".to_string(),
        };
        let counter = match &c.worst_counter {
            Some(w) => format!(
                "{{\"counter\":{},\"baseline\":{},\"candidate\":{}}}",
                json::string(w.counter),
                w.baseline,
                w.candidate
            ),
            None => "null".to_string(),
        };
        let _ = write!(
            out,
            "{{\"benchmark\":{},\"baseline\":{},\"candidate\":{{\"estimate\":{},\"lo\":{},\"hi\":{}}},\
             \"ratio\":{},\"verdict\":{},\"worst_stage\":{},\"worst_counter\":{}}}",
            json::string(&c.benchmark),
            base,
            json::number(c.candidate.estimate),
            json::number(c.candidate.lo),
            json::number(c.candidate.hi),
            json::number(c.ratio),
            json::string(verdict_tag(c.verdict)),
            stage,
            counter,
        );
    }
    out.push(']');
    out
}

/// Render the history trajectory: one line per benchmark per run (runs
/// as grouped by [`super::group_runs`], oldest first), with the median
/// and the change against the previous run of the same benchmark.
pub fn trajectory(runs: &[(String, Vec<&RunRecord>)]) -> String {
    let mut out = String::new();
    if runs.is_empty() {
        let _ = writeln!(out, "perf history: no runs recorded for this host yet");
        return out;
    }
    let _ = writeln!(out, "perf history: {} run(s) on this host", runs.len());
    let mut last_median: Vec<(String, f64)> = Vec::new();
    for (run_id, records) in runs {
        let first = records.first().expect("runs are non-empty groups");
        let _ = writeln!(
            out,
            "run {run_id}  (git {}, preset {}, {} repeats)",
            first.manifest.git_sha, first.manifest.preset, first.manifest.repeats
        );
        for r in records {
            let median = r.median_secs();
            let prev = last_median
                .iter_mut()
                .find(|(name, _)| *name == r.benchmark);
            let delta = match &prev {
                Some((_, p)) if *p > 0.0 => format!("  x{:.3} vs prev", median / *p),
                _ => String::new(),
            };
            match prev {
                Some((_, p)) => *p = median,
                None => last_median.push((r.benchmark.clone(), median)),
            }
            let _ = writeln!(
                out,
                "  {:<24} median {:>10}  ({} samples){delta}",
                r.benchmark,
                fmt_secs(median),
                r.samples_secs.len(),
            );
        }
    }
    out
}

/// The Algorithm-1 stage whose share of the run moved the most between
/// two records, as `(stage, delta in percentage points)`. `None` when
/// either record carries no stage attribution (untraced history lines).
fn worst_stage_drift(first: &RunRecord, last: &RunRecord) -> Option<(&'static str, f64)> {
    let tf: f64 = first.stage_secs.iter().sum();
    let tl: f64 = last.stage_secs.iter().sum();
    if tf <= 0.0 || tl <= 0.0 {
        return None;
    }
    ara_trace::stage_names::ALL
        .iter()
        .enumerate()
        .map(|(i, s)| {
            (
                *s,
                100.0 * last.stage_secs[i] / tl - 100.0 * first.stage_secs[i] / tf,
            )
        })
        .max_by(|a, b| {
            a.1.abs()
                .partial_cmp(&b.1.abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })
}

/// Longitudinal drift across the whole recorded history: for each
/// benchmark, the first and latest run medians, the drift factor, and
/// the Algorithm-1 stage whose share of the run moved the most — the
/// slow-creep view that per-run gates can't see.
pub fn trend(runs: &[(String, Vec<&RunRecord>)]) -> String {
    let mut out = String::new();
    if runs.len() < 2 {
        let _ = writeln!(
            out,
            "perf trend: need at least two recorded runs for this host (have {})",
            runs.len()
        );
        return out;
    }
    let _ = writeln!(
        out,
        "perf trend: {} runs on this host ({} -> {})",
        runs.len(),
        runs[0].0,
        runs[runs.len() - 1].0
    );
    // (benchmark, first record, latest record, runs seen) in first-seen
    // order, scanning runs oldest-first.
    let mut benches: Vec<(&str, &RunRecord, &RunRecord, usize)> = Vec::new();
    for (_, records) in runs {
        for r in records {
            match benches.iter_mut().find(|(name, ..)| *name == r.benchmark) {
                Some((_, _, last, n)) => {
                    *last = r;
                    *n += 1;
                }
                None => benches.push((r.benchmark.as_str(), r, r, 1)),
            }
        }
    }
    let _ = writeln!(
        out,
        "  {:<24} {:>10} {:>10} {:>8}  worst-moving stage",
        "benchmark", "first", "latest", "drift"
    );
    for (name, first, last, n) in benches {
        let f = first.median_secs();
        let l = last.median_secs();
        let drift = if f > 0.0 {
            format!("x{:.3}", l / f)
        } else {
            "-".to_string()
        };
        let stage = match worst_stage_drift(first, last) {
            Some((s, pp)) => format!("{s} ({pp:+.1}pp share)"),
            None => "-".to_string(),
        };
        let _ = writeln!(
            out,
            "  {:<24} {:>10} {:>10} {:>8}  {stage}  [{n} run(s)]",
            name,
            fmt_secs(f),
            fmt_secs(l),
            drift,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::compare::{compare_records, GatePolicy};
    use crate::perf::RunManifest;

    fn record(benchmark: &str, run_id: &str, at: u64, samples: &[f64]) -> RunRecord {
        RunRecord {
            run_id: run_id.to_string(),
            benchmark: benchmark.to_string(),
            recorded_unix: at,
            samples_secs: samples.to_vec(),
            stage_secs: [0.001, 0.006, 0.002, 0.001],
            stage_counters: None,
            manifest: RunManifest::collect("small", samples.len()),
        }
    }

    fn counters(llc_misses: u64) -> ara_trace::StageCounters {
        let mut c = ara_trace::StageCounters::ZERO;
        c.lookup.set(ara_trace::CounterKind::LlcMisses, llc_misses);
        c
    }

    fn regressed_comparison() -> Comparison {
        let mut base = record("engine.sequential-cpu", "r1", 10, &[0.010, 0.011, 0.0105]);
        base.stage_counters = Some(counters(1_000));
        let mut cand = record("engine.sequential-cpu", "r2", 20, &[0.021, 0.022, 0.0215]);
        cand.stage_secs = [0.001, 0.017, 0.002, 0.001];
        cand.stage_counters = Some(counters(8_000));
        compare_records(&base, &cand, &GatePolicy::default())
    }

    #[test]
    fn summary_names_benchmark_and_stage_on_regression() {
        let c = regressed_comparison();
        let text = summary(&[c], &GatePolicy::default());
        assert!(text.contains("engine.sequential-cpu"));
        assert!(text.contains("REGRESSED"));
        assert!(text.contains("worst-moving stage"));
        assert!(text.contains(ara_trace::stage_names::LOOKUP));
        assert!(text.contains("worst-moving counter: llc_misses (1000 -> 8000"));
        assert!(text.contains("1 regressed"));
    }

    #[test]
    fn markdown_renders_a_table() {
        let c = regressed_comparison();
        let text = markdown(&[c]);
        assert!(text.starts_with("| benchmark |"));
        assert!(text.contains("| engine.sequential-cpu |"));
        assert!(text.contains("REGRESSED"));
    }

    #[test]
    fn json_report_parses_back() {
        let c = regressed_comparison();
        let doc = json::parse(&json_report(&[c])).expect("report is valid JSON");
        let arr = doc.as_array().expect("array");
        assert_eq!(arr.len(), 1);
        assert_eq!(
            arr[0].get("verdict").and_then(json::Json::as_str),
            Some("REGRESSED")
        );
        assert!(arr[0].get("worst_stage").unwrap().get("stage").is_some());
        assert_eq!(
            arr[0]
                .get("worst_counter")
                .unwrap()
                .get("counter")
                .and_then(json::Json::as_str),
            Some("llc_misses")
        );
    }

    #[test]
    fn trajectory_shows_run_over_run_movement() {
        let r1 = record("engine.multi-gpu", "r1", 10, &[0.010, 0.010]);
        let r2 = record("engine.multi-gpu", "r2", 20, &[0.020, 0.020]);
        let runs = vec![("r1".to_string(), vec![&r1]), ("r2".to_string(), vec![&r2])];
        let text = trajectory(&runs);
        assert!(text.contains("2 run(s)"));
        assert!(text.contains("x2.000 vs prev"));
        assert!(trajectory(&[]).contains("no runs recorded"));
    }

    #[test]
    fn trend_shows_first_to_latest_drift_with_stage_attribution() {
        let r1 = record("engine.multi-gpu", "r1", 10, &[0.010, 0.010]);
        let mut r2 = record("engine.multi-gpu", "r2", 20, &[0.015, 0.015]);
        r2.stage_secs = [0.001, 0.006, 0.002, 0.001];
        let mut r3 = record("engine.multi-gpu", "r3", 30, &[0.030, 0.030]);
        // Lookup's share grows from 60% to ~77%: the worst mover.
        r3.stage_secs = [0.001, 0.020, 0.004, 0.001];
        let runs = vec![
            ("r1".to_string(), vec![&r1]),
            ("r2".to_string(), vec![&r2]),
            ("r3".to_string(), vec![&r3]),
        ];
        let text = trend(&runs);
        assert!(text.contains("3 runs on this host (r1 -> r3)"), "{text}");
        assert!(text.contains("engine.multi-gpu"), "{text}");
        assert!(text.contains("x3.000"), "{text}");
        assert!(text.contains(ara_trace::stage_names::LOOKUP), "{text}");
        assert!(text.contains("[3 run(s)]"), "{text}");
        // Degrades gracefully with too little history.
        assert!(trend(&runs[..1]).contains("at least two"));
        assert!(trend(&[]).contains("at least two"));
    }

    #[test]
    fn seconds_formatting_scales() {
        assert_eq!(fmt_secs(2.5), "2.500s");
        assert_eq!(fmt_secs(0.0025), "2.500ms");
        assert_eq!(fmt_secs(0.0000025), "2.5us");
    }
}
