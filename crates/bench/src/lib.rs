//! # ara-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation section; each
//! regenerates the corresponding rows/series. Because the paper's
//! hardware (i7-2600, Tesla C2075, 4× Tesla M2090) is not available,
//! every experiment reports two columns where applicable:
//!
//! * **modeled @ paper scale** — the `simt-sim` performance model on the
//!   paper's device presets at the paper's workload (1 M trials × 1 000
//!   events × 15 ELTs), next to the paper's published number;
//! * **measured @ bench scale** — real wall-clock time of the actual
//!   engines on this machine at the 1/1000-work [`bench
//!   scale`](ara_workload::ScenarioShape::bench).
//!
//! Binaries (run with `cargo run --release -p ara-bench --bin <name>`):
//!
//! | binary | paper artefact |
//! |---|---|
//! | `seq_scaling` | §IV-A: sequential time linear in each shape axis |
//! | `fig1a` | Figure 1a: cores vs time on the multi-core CPU |
//! | `fig1b` | Figure 1b: total threads vs time (oversubscription) |
//! | `fig2` | Figure 2: threads/block vs time, basic GPU |
//! | `fig3` | Figure 3: number of GPUs vs time + efficiency |
//! | `fig4` | Figure 4: threads/block vs time on four GPUs |
//! | `fig5` | Figure 5: total time, all five implementations |
//! | `fig6` | Figure 6: % time per activity per platform |
//! | `table_opt` | §IV-B: GPU optimisation ablation (38.47 s → 20.63 s) |
//! | `table_ds` | §III: ELT lookup data-structure comparison |
//! | `bench_hotpath` | scalar vs batched vs blocked gather throughput |
//!
//! All timing binaries take `--repeat N` (default 3): each measurement
//! runs once untimed as warmup, then `N` timed repeats, reporting the
//! minimum (the least-interfered-with run on a shared machine). Every
//! repeat sample is additionally retained and lands, together with a
//! [`perf::RunManifest`] provenance block, in the binary's
//! `BENCH_*.json` sidecar — the raw material of the [`perf`] baseline
//! store and regression gate (`ara perf record|compare|gate|report`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod perf;
pub mod report;
pub mod runner;

pub use report::{
    bytes, emit, pct, results_json_full, secs, speedup, write_sidecar, ReportError, Table,
};
pub use runner::{
    bench_inputs, drain_samples, measure, measure_labelled, measure_min, measured_label,
    paper_shape, repeat_from_args, small_inputs, MEASURED_SCALE_NOTE,
};
