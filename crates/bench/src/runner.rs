//! Shared plumbing for the experiment binaries.

use ara_core::Inputs;
use ara_workload::{Scenario, ScenarioShape};
use simt_sim::model::cpu::AraShape;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Process-wide log of every timed repeat, `(label, samples_secs)` per
/// measurement, drained into the `BENCH_*.json` sidecar by
/// [`crate::report::write_sidecar`] so the perf history keeps the full
/// distribution — not just the min the printed tables show.
static SAMPLE_LOG: Mutex<Vec<(String, Vec<f64>)>> = Mutex::new(Vec::new());

/// Counter behind the auto-generated `measure#N` labels.
static ANON_MEASUREMENTS: AtomicUsize = AtomicUsize::new(0);

/// The footnote every binary prints under its measured columns.
pub const MEASURED_SCALE_NOTE: &str =
    "measured columns: real wall time of the Rust engines on this machine at \
     bench scale (10k trials x 100 events); modeled columns: simt-sim \
     performance model on the paper's hardware at paper scale (1M x 1000).";

/// The paper's workload shape for the models.
pub fn paper_shape() -> AraShape {
    AraShape::paper()
}

/// The measured-scale workload: a single 15-ELT layer like the paper's,
/// at 1/1000 of the lookup volume so each engine runs in seconds.
pub fn bench_inputs(seed: u64) -> Inputs {
    Scenario::new(ScenarioShape::bench(), seed)
        .build()
        .expect("bench scenario generates valid inputs")
}

/// A smaller measured workload for the slower sweeps.
pub fn small_inputs(seed: u64) -> Inputs {
    let shape = ScenarioShape {
        num_trials: 2_000,
        events_per_trial: 100.0,
        catalogue_size: 200_000,
        num_elts: 15,
        records_per_elt: 2_000,
        num_layers: 1,
        elts_per_layer: (15, 15),
    };
    Scenario::new(shape, seed)
        .build()
        .expect("small scenario generates valid inputs")
}

/// Wall-clock a closure, returning `(result, seconds)`.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Wall-clock a closure with one untimed warmup run followed by
/// `repeats` timed runs, returning the final result and the **minimum**
/// wall time observed. The warmup faults in lazily-allocated pages and
/// populates caches; min-of-N suppresses host-scheduler noise in the
/// measured columns (see EXPERIMENTS.md). All repeat samples — not just
/// the min — are retained under `label` for the sidecar/perf history.
pub fn measure_labelled<T>(label: &str, repeats: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let repeats = repeats.max(1);
    f(); // warmup, untimed
    let mut samples = Vec::with_capacity(repeats);
    let mut out = None;
    for _ in 0..repeats {
        let (v, secs) = measure(&mut f);
        samples.push(secs);
        out = Some(v);
    }
    let best = samples.iter().copied().fold(f64::INFINITY, f64::min);
    if let Ok(mut log) = SAMPLE_LOG.lock() {
        log.push((label.to_string(), samples));
    }
    (out.expect("repeats >= 1"), best)
}

/// [`measure_labelled`] under an auto-generated `measure#N` label, for
/// call sites that don't need a stable name in the sample log.
pub fn measure_min<T>(repeats: usize, f: impl FnMut() -> T) -> (T, f64) {
    let n = ANON_MEASUREMENTS.fetch_add(1, Ordering::Relaxed);
    measure_labelled(&format!("measure#{n}"), repeats, f)
}

/// Take (and clear) every `(label, samples)` measurement recorded so
/// far. Called once per binary when the sidecar is written.
pub fn drain_samples() -> Vec<(String, Vec<f64>)> {
    SAMPLE_LOG
        .lock()
        .map(|mut log| std::mem::take(&mut *log))
        .unwrap_or_default()
}

/// Parse `--repeat N` (or `--repeat=N`) from the process arguments;
/// defaults to 3 timed runs, clamped to at least 1.
pub fn repeat_from_args() -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--repeat" {
            if let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) {
                return n.max(1);
            }
        } else if let Some(v) = a.strip_prefix("--repeat=") {
            if let Ok(n) = v.parse::<usize>() {
                return n.max(1);
            }
        }
    }
    3
}

/// Label for measured columns including the host's core count.
pub fn measured_label() -> String {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    format!("measured ({cores}-core host)")
}

/// Serialises tests that touch the process-wide [`SAMPLE_LOG`] (the
/// runner's own tests and the sidecar tests in [`crate::report`]), so a
/// concurrent drain can't steal another test's samples.
#[cfg(test)]
pub(crate) static TEST_SAMPLE_LOCK: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_inputs_have_paper_like_shape() {
        let inputs = bench_inputs(1);
        assert_eq!(inputs.yet.num_trials(), 10_000);
        assert_eq!(inputs.layers.len(), 1);
        assert_eq!(inputs.layers[0].num_elts(), 15);
    }

    #[test]
    fn measure_returns_result_and_time() {
        let (v, secs) = measure(|| 40 + 2);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn small_inputs_are_smaller() {
        let s = small_inputs(1);
        assert_eq!(s.yet.num_trials(), 2_000);
    }

    #[test]
    fn measure_min_returns_result_and_min_time() {
        let _guard = TEST_SAMPLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut calls = 0u32;
        let (v, secs) = measure_min(3, || {
            calls += 1;
            calls
        });
        // 1 warmup + 3 timed runs.
        assert_eq!(calls, 4);
        assert_eq!(v, 4);
        assert!(secs >= 0.0 && secs.is_finite());
        drain_samples();
    }

    #[test]
    fn measure_min_clamps_zero_repeats() {
        let _guard = TEST_SAMPLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let (v, _) = measure_min(0, || 7);
        assert_eq!(v, 7);
        drain_samples();
    }

    #[test]
    fn labelled_measurements_retain_every_sample() {
        let _guard = TEST_SAMPLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        drain_samples();
        let (_, min) = measure_labelled("unit.labelled", 4, || std::hint::black_box(1 + 1));
        let (_, _) = measure_min(2, || 0);
        let drained = drain_samples();
        let (label, samples) = &drained[0];
        assert_eq!(label, "unit.labelled");
        assert_eq!(samples.len(), 4, "all repeats retained, not just min");
        let sample_min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        assert_eq!(sample_min, min);
        assert!(drained[1].0.starts_with("measure#"));
        assert_eq!(drained[1].1.len(), 2);
        assert!(drain_samples().is_empty(), "drain clears the log");
    }

    #[test]
    fn repeat_default_is_three() {
        // The test binary's args carry no --repeat flag.
        assert_eq!(repeat_from_args(), 3);
    }
}
