//! Plain-text table rendering for the experiment binaries.

/// A fixed-width text table with a title, headers and rows.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    ///
    /// # Panics
    /// Panics on column-count mismatch.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                s.push_str(&format!("{cell:>w$}", w = w));
            }
            s.push('\n');
            s
        };
        out.push_str(&line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
        }
        out
    }

    /// Render and print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Format seconds with three significant decimals (e.g. `4.350 s`).
pub fn secs(v: f64) -> String {
    if v.is_infinite() {
        "infeasible".to_string()
    } else if v >= 100.0 {
        format!("{v:.1} s")
    } else if v >= 1.0 {
        format!("{v:.2} s")
    } else {
        format!("{:.2} ms", v * 1e3)
    }
}

/// Format a ratio as `12.3x`.
pub fn speedup(v: f64) -> String {
    format!("{v:.1}x")
}

/// Format a percentage.
pub fn pct(v: f64) -> String {
    format!("{v:.1}%")
}

/// Format a byte count in a human unit.
pub fn bytes(v: usize) -> String {
    const UNITS: [&str; 4] = ["B", "KiB", "MiB", "GiB"];
    let mut v = v as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    format!("{v:.1} {}", UNITS[unit])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["long-name".into(), "22".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("long-name"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        // Both data lines end-align the value column.
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_mismatch_panics() {
        Table::new("t", &["a", "b"]).row(&["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(4.35), "4.35 s");
        assert_eq!(secs(337.47), "337.5 s");
        assert_eq!(secs(0.0213), "21.30 ms");
        assert_eq!(secs(f64::INFINITY), "infeasible");
        assert_eq!(speedup(77.57), "77.6x");
        assert_eq!(pct(97.54), "97.5%");
        assert_eq!(bytes(120 << 20), "120.0 MiB");
        assert_eq!(bytes(512), "512.0 B");
    }
}
