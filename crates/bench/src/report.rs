//! Plain-text table rendering and JSON sidecar emission for the
//! experiment binaries.

use std::fmt;
use std::path::PathBuf;

/// Failures of table construction or sidecar emission.
#[derive(Debug)]
pub enum ReportError {
    /// A row's cell count does not match the table's header count.
    WidthMismatch {
        /// Header count of the table.
        expected: usize,
        /// Cell count of the offending row.
        got: usize,
    },
    /// Sidecar write failure.
    Io(std::io::Error),
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReportError::WidthMismatch { expected, got } => {
                write!(
                    f,
                    "row width mismatch: expected {expected} cells, got {got}"
                )
            }
            ReportError::Io(e) => write!(f, "sidecar write failed: {e}"),
        }
    }
}

impl std::error::Error for ReportError {}

impl From<std::io::Error> for ReportError {
    fn from(e: std::io::Error) -> Self {
        ReportError::Io(e)
    }
}

/// A fixed-width text table with a title, headers and rows.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; errors on column-count mismatch.
    pub fn row(&mut self, cells: &[String]) -> Result<&mut Self, ReportError> {
        if cells.len() != self.headers.len() {
            return Err(ReportError::WidthMismatch {
                expected: self.headers.len(),
                got: cells.len(),
            });
        }
        self.rows.push(cells.to_vec());
        Ok(self)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                s.push_str(&format!("{cell:>w$}", w = w));
            }
            s.push('\n');
            s
        };
        out.push_str(&line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
        }
        out
    }

    /// Render and print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Serialise as a JSON object: `{"title":…,"headers":[…],"rows":[[…]]}`.
    pub fn to_json(&self) -> String {
        use ara_trace::json::string;
        let mut out = String::new();
        out.push_str("{\"title\":");
        out.push_str(&string(&self.title));
        out.push_str(",\"headers\":[");
        for (i, h) in self.headers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&string(h));
        }
        out.push_str("],\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            for (j, cell) in row.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&string(cell));
            }
            out.push(']');
        }
        out.push_str("]}");
        out
    }
}

/// Serialise a benchmark result set: `{"benchmark":…,"tables":[…]}`.
pub fn results_json(name: &str, tables: &[&Table]) -> String {
    let mut out = String::new();
    out.push_str("{\"benchmark\":");
    out.push_str(&ara_trace::json::string(name));
    out.push_str(",\"tables\":[");
    for (i, t) in tables.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&t.to_json());
    }
    out.push_str("]}\n");
    out
}

/// Serialise a benchmark result set with full provenance:
/// `{"benchmark":…,"manifest":{…},"measurements":[…],"tables":[…]}`.
/// Each measurement carries *every* repeat sample plus the min the
/// printed tables report.
pub fn results_json_full(
    name: &str,
    tables: &[&Table],
    manifest: &crate::perf::RunManifest,
    measurements: &[(String, Vec<f64>)],
) -> String {
    use ara_trace::json::{number, string};
    let mut out = String::new();
    out.push_str("{\"benchmark\":");
    out.push_str(&string(name));
    out.push_str(",\"manifest\":");
    out.push_str(&manifest.to_json());
    out.push_str(",\"measurements\":[");
    for (i, (label, samples)) in measurements.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"label\":");
        out.push_str(&string(label));
        out.push_str(",\"samples\":[");
        for (j, s) in samples.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&number(*s));
        }
        out.push_str("],\"min\":");
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        out.push_str(&number(if min.is_finite() { min } else { 0.0 }));
        out.push('}');
    }
    out.push_str("],\"tables\":[");
    for (i, t) in tables.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&t.to_json());
    }
    out.push_str("]}\n");
    out
}

/// Write a `BENCH_<name>.json` sidecar holding all of a binary's tables,
/// its [`RunManifest`](crate::perf::RunManifest) provenance, and every
/// repeat sample recorded through [`crate::runner::measure_labelled`] /
/// [`crate::runner::measure_min`] (the sample log is drained here).
///
/// The file lands in the current working directory (or `$ARA_BENCH_DIR`
/// if set) and is machine-readable via [`ara_trace::json::parse`].
pub fn write_sidecar(name: &str, tables: &[&Table]) -> Result<PathBuf, ReportError> {
    let dir = std::env::var_os("ARA_BENCH_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let path = dir.join(format!("BENCH_{name}.json"));
    let manifest = crate::perf::RunManifest::collect(
        &format!("bin:{name}"),
        crate::runner::repeat_from_args(),
    );
    let measurements = crate::runner::drain_samples();
    std::fs::write(
        &path,
        results_json_full(name, tables, &manifest, &measurements),
    )?;
    Ok(path)
}

/// Print every table, then write the JSON sidecar and report its path.
pub fn emit(name: &str, tables: &[&Table]) -> Result<(), ReportError> {
    for t in tables {
        t.print();
    }
    let path = write_sidecar(name, tables)?;
    println!("sidecar: {}", path.display());
    Ok(())
}

/// Format seconds with three significant decimals (e.g. `4.350 s`).
pub fn secs(v: f64) -> String {
    if v.is_infinite() {
        "infeasible".to_string()
    } else if v >= 100.0 {
        format!("{v:.1} s")
    } else if v >= 1.0 {
        format!("{v:.2} s")
    } else {
        format!("{:.2} ms", v * 1e3)
    }
}

/// Format a ratio as `12.3x`.
pub fn speedup(v: f64) -> String {
    format!("{v:.1}x")
}

/// Format a percentage.
pub fn pct(v: f64) -> String {
    format!("{v:.1}%")
}

/// Format a byte count in a human unit.
pub fn bytes(v: usize) -> String {
    const UNITS: [&str; 4] = ["B", "KiB", "MiB", "GiB"];
    let mut v = v as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    format!("{v:.1} {}", UNITS[unit])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["a".into(), "1".into()]).unwrap();
        t.row(&["long-name".into(), "22".into()]).unwrap();
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("long-name"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        // Both data lines end-align the value column.
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn row_width_mismatch_is_an_error() {
        let err = Table::new("t", &["a", "b"])
            .row(&["only-one".into()])
            .unwrap_err();
        match err {
            ReportError::WidthMismatch { expected, got } => {
                assert_eq!(expected, 2);
                assert_eq!(got, 1);
            }
            other => panic!("unexpected error: {other}"),
        }
        assert!(err.to_string().contains("expected 2"));
    }

    #[test]
    fn to_json_round_trips_through_the_trace_parser() {
        let mut t = Table::new("speed \"quoted\"", &["engine", "secs"]);
        t.row(&["seq".into(), "4.35".into()]).unwrap();
        t.row(&["multi-gpu".into(), "0.05".into()]).unwrap();
        let doc = ara_trace::json::parse(&t.to_json()).expect("valid json");
        assert_eq!(
            doc.get("title").and_then(|v| v.as_str()),
            Some("speed \"quoted\"")
        );
        let headers = doc.get("headers").and_then(|v| v.as_array()).unwrap();
        assert_eq!(headers.len(), 2);
        let rows = doc.get("rows").and_then(|v| v.as_array()).unwrap();
        assert_eq!(rows.len(), 2);
        let first = rows[0].as_array().unwrap();
        assert_eq!(first[0].as_str(), Some("seq"));
        assert_eq!(first[1].as_str(), Some("4.35"));
    }

    #[test]
    fn sidecar_lands_in_ara_bench_dir_with_provenance() {
        let _guard = crate::runner::TEST_SAMPLE_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        crate::runner::drain_samples();
        let dir = std::env::temp_dir().join(format!("ara-bench-sidecar-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("ARA_BENCH_DIR", &dir);
        let mut a = Table::new("first", &["k"]);
        a.row(&["v".into()]).unwrap();
        let mut b = Table::new("second", &["k"]);
        b.row(&["w".into()]).unwrap();
        let (_, _) = crate::runner::measure_labelled("sidecar.case", 2, || 42);
        let path = write_sidecar("unit_test", &[&a, &b]).unwrap();
        std::env::remove_var("ARA_BENCH_DIR");
        assert_eq!(path.file_name().unwrap(), "BENCH_unit_test.json");
        let body = std::fs::read_to_string(&path).unwrap();
        let doc = ara_trace::json::parse(&body).expect("valid json");
        assert_eq!(
            doc.get("benchmark").and_then(|v| v.as_str()),
            Some("unit_test")
        );
        let tables = doc.get("tables").and_then(|v| v.as_array()).unwrap();
        assert_eq!(tables.len(), 2);
        assert_eq!(
            tables[1].get("title").and_then(|v| v.as_str()),
            Some("second")
        );
        // Provenance: a manifest tagged with the binary name…
        let manifest = doc.get("manifest").expect("sidecar carries a manifest");
        assert_eq!(
            manifest.get("preset").and_then(|v| v.as_str()),
            Some("bin:unit_test")
        );
        assert!(manifest.get("fingerprint").is_some());
        // …and the full repeat samples of every measurement.
        let measurements = doc.get("measurements").and_then(|v| v.as_array()).unwrap();
        let m = measurements
            .iter()
            .find(|m| m.get("label").and_then(|v| v.as_str()) == Some("sidecar.case"))
            .expect("labelled measurement present");
        assert_eq!(
            m.get("samples").and_then(|v| v.as_array()).unwrap().len(),
            2
        );
        assert!(m.get("min").and_then(|v| v.as_f64()).unwrap() >= 0.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(4.35), "4.35 s");
        assert_eq!(secs(337.47), "337.5 s");
        assert_eq!(secs(0.0213), "21.30 ms");
        assert_eq!(secs(f64::INFINITY), "infeasible");
        assert_eq!(speedup(77.57), "77.6x");
        assert_eq!(pct(97.54), "97.5%");
        assert_eq!(bytes(120 << 20), "120.0 MiB");
        assert_eq!(bytes(512), "512.0 B");
    }
}
