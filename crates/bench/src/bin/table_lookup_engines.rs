//! Extension study: the §III data-structure choice measured **end to
//! end** — the full sequential analysis run with each lookup structure.
//!
//! The paper's microbenchmark argument (one access per lookup) matters
//! because "over 65% of the time" of the whole analysis is lookups.
//! This binary re-runs the complete sequential engine pipeline with
//! every `LossLookup` implementation, so the data-structure choice is
//! weighed in its real context — including the compressed future-work
//! structures.

use ara_bench::report::{bytes, secs, speedup};
use ara_bench::{measure_min, measured_label, repeat_from_args, small_inputs, Table};
use ara_core::{
    analyse_layer, BlockDeltaLookup, CuckooHashTable, DirectAccessTable, LossLookup,
    PagedDirectTable, PreparedLayer, Real, SortedLookup, StdHashLookup,
};

/// Run the full sequential analysis with a prepared layer built on the
/// lookup structure produced by `build`. Returns (seconds, memory,
/// checksum of year losses).
fn run_with<R, L, F>(inputs: &ara_core::Inputs, build: F) -> (f64, usize, f64)
where
    R: Real,
    L: LossLookup<R>,
    F: Fn(&ara_core::EventLossTable) -> L,
{
    let layer = &inputs.layers[0];
    let lookups: Vec<L> = layer
        .elt_indices
        .iter()
        .map(|&i| build(&inputs.elts[i]))
        .collect();
    let memory: usize = lookups.iter().map(|l| l.memory_bytes()).sum();
    let fin = layer
        .elt_indices
        .iter()
        .map(|&i| *inputs.elts[i].terms())
        .collect();
    let prepared = PreparedLayer::from_parts(lookups, fin, layer.terms);
    // Warm-up, then best-of-three to tame host noise.
    analyse_layer(&prepared, &inputs.yet);
    let mut best = f64::INFINITY;
    let mut checksum = 0.0;
    for _ in 0..3 {
        let (ylt, secs) = measure_min(repeat_from_args(), || analyse_layer(&prepared, &inputs.yet));
        best = best.min(secs);
        checksum = ylt.year_losses().iter().sum();
    }
    (best, memory, checksum)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let inputs = small_inputs(2024);
    let cat = inputs.yet.catalogue_size();

    let mut table = Table::new(
        "End-to-end sequential analysis per lookup structure (2k trials x 100 events, 15 ELTs)",
        &[
            "structure",
            "analysis time",
            "vs direct",
            "tables memory",
            "YLT checksum",
        ],
    );
    let mut baseline = 0.0;
    let mut add =
        |name: &str, (secs_v, mem, sum): (f64, usize, f64)| -> Result<(), ara_bench::ReportError> {
            if baseline == 0.0 {
                baseline = secs_v;
            }
            table.row(&[
                name.to_string(),
                secs(secs_v),
                speedup(secs_v / baseline),
                bytes(mem),
                format!("{sum:.6e}"),
            ])?;
            Ok(())
        };

    add(
        "direct access (paper's choice)",
        run_with::<f64, _, _>(&inputs, |e| {
            DirectAccessTable::from_elt(e, cat).expect("fits catalogue")
        }),
    )?;
    add(
        "paged direct (compressed)",
        run_with::<f64, _, _>(&inputs, |e| {
            PagedDirectTable::from_elt(e, cat).expect("fits catalogue")
        }),
    )?;
    add(
        "cuckoo hash",
        run_with::<f64, _, _>(&inputs, |e| CuckooHashTable::from_elt(e).expect("builds")),
    )?;
    add(
        "std HashMap",
        run_with::<f64, _, _>(&inputs, StdHashLookup::from_elt),
    )?;
    add(
        "binary search",
        run_with::<f64, _, _>(&inputs, SortedLookup::from_elt),
    )?;
    add(
        "block-delta (compressed)",
        run_with::<f64, _, _>(&inputs, BlockDeltaLookup::from_elt),
    )?;

    ara_bench::emit("table_lookup_engines", &[&table])?;
    println!(
        "({}; 'vs direct' is the slowdown factor; identical checksums prove the",
        measured_label()
    );
    println!("structure choice is purely a performance decision, exactly as §III argues.)");
    Ok(())
}
