//! §IV-A: sequential execution time is linear in each workload axis.
//!
//! "There is a linear increase on running time of executing the
//! sequential version … when the number of events in a trial, number of
//! trials, average number of ELTs per layer and number of layers is
//! increased."
//!
//! Each sweep below doubles one axis while holding the others, printing
//! both the measured wall time of the real sequential engine (small
//! scale) and the modeled i7-2600 time (paper scale base).

use ara_bench::report::secs;
use ara_bench::{measure_min, measured_label, repeat_from_args, Table};
use ara_engine::{Engine, SequentialEngine};
use ara_workload::{Scenario, ScenarioShape};
use simt_sim::model::cpu::AraShape;

fn base_shape() -> ScenarioShape {
    ScenarioShape {
        num_trials: 5_000,
        events_per_trial: 100.0,
        catalogue_size: 100_000,
        num_elts: 16,
        records_per_elt: 1_000,
        num_layers: 1,
        elts_per_layer: (4, 4),
    }
}

fn run(shape: ScenarioShape) -> f64 {
    let inputs = Scenario::new(shape, 7).build().expect("valid scenario");
    let engine = SequentialEngine::<f64>::new();
    // Warm-up once, then take the best of three runs of the simulation
    // stage alone — the prepare stage (zero-filling the direct access
    // tables) scales with the catalogue, not with the axes under study.
    engine.analyse(&inputs).expect("valid inputs");
    (0..3)
        .map(|_| {
            let (out, wall) = measure_min(repeat_from_args(), || {
                engine.analyse(&inputs).expect("valid inputs")
            });
            wall - out.prepare.as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = simt_sim::model::cpu::CpuTimingModel::i7_2600();
    let mut table = Table::new(
        "Sequential scaling — time vs each workload axis (x1, x2, x4)",
        &[
            "axis",
            "x1",
            "x2",
            "x4",
            "x4/x1 (measured)",
            "x4/x1 (modeled)",
            "col",
        ],
    );
    type Axis = (
        &'static str,
        Box<dyn Fn(ScenarioShape, usize) -> ScenarioShape>,
    );
    let axes: Vec<Axis> = vec![
        (
            "trials",
            Box::new(|mut s: ScenarioShape, f: usize| {
                s.num_trials *= f;
                s
            }),
        ),
        (
            "events/trial",
            Box::new(|mut s, f| {
                s.events_per_trial *= f as f64;
                s
            }),
        ),
        (
            "ELTs/layer",
            Box::new(|mut s, f| {
                s.elts_per_layer = (s.elts_per_layer.0 * f, s.elts_per_layer.1 * f);
                s
            }),
        ),
        (
            "layers",
            Box::new(|mut s, f| {
                s.num_layers *= f;
                s
            }),
        ),
    ];
    for (name, grow) in axes {
        let mut measured = Vec::new();
        let mut modeled = Vec::new();
        for f in [1usize, 2, 4] {
            let shape = grow(base_shape(), f);
            measured.push(run(shape));
            let ara = AraShape {
                trials: shape.num_trials as u64,
                events_per_trial: shape.events_per_trial,
                elts_per_layer: (shape.elts_per_layer.0 + shape.elts_per_layer.1) as f64 / 2.0,
                layers: shape.num_layers as f64,
            };
            modeled.push(model.breakdown(&ara, 1, 1).total());
        }
        table.row(&[
            name.to_string(),
            secs(measured[0]),
            secs(measured[1]),
            secs(measured[2]),
            format!("{:.2}", measured[2] / measured[0]),
            format!("{:.2}", modeled[2] / modeled[0]),
            measured_label(),
        ])?;
    }
    ara_bench::emit("seq_scaling", &[&table])?;
    println!("paper: linear in every axis (x4/x1 ~ 4.0; ELTs slightly sub-linear because the");
    println!("layer-terms stage is per-event, independent of the ELT count).");
    println!("note: measured ratios on a shared/single-core host carry scheduler noise and");
    println!("cache effects of a few tens of percent; the modeled column is the clean signal.");
    Ok(())
}
