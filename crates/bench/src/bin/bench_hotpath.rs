//! Hot-path gather microbenchmark: scalar vs batched vs blocked.
//!
//! Measures event-loss lookups per second over the bench workload's full
//! event stream (10 k trials × ~100 events × 15 ELTs ≈ 15 M lookups per
//! pass) for all four lookup strategies, three ways:
//!
//! * **scalar** — the pre-batching hot loop: trial by trial, one
//!   `LossLookup::loss(event)` call per lookup (the shape every engine
//!   executed before the batch API). Its working set is *all* of the
//!   layer's tables at once, cycled per ~100-event trial.
//! * **batched** — `LossLookup::loss_batch` over the whole event stream,
//!   one ELT at a time: unrolled, autovectorization-friendly, and each
//!   table streams through the cache once per pass.
//! * **blocked** — `BlockedGather` over bounded sub-batches: events are
//!   counting-sorted by table region so every ELT's slab for the current
//!   region stays cache-resident until the region drains (direct-access
//!   tables only — the other strategies have no contiguous slab to
//!   block).
//! * **simd (portable) / simd (native)** — the batched direct gather
//!   through the explicit SIMD kernels: the eight-lane portable tier and
//!   the widest tier this host dispatches to (AVX-512 > AVX2 > portable;
//!   honours `ARA_SIMD`). The legacy scalar/batched/blocked rows pin
//!   `SimdTier::Scalar`, so their numbers stay comparable across the
//!   SIMD change.
//!
//! A second table times the fused per-trial paths end to end
//! (`analyse_layer_scalar` vs `analyse_layer` vs `analyse_layer_blocked`,
//! plus the streaming blocked path at the portable and native SIMD
//! tiers), whose outputs are bit-identical by construction (asserted
//! here).
//!
//! Flags: `--repeat N` (timed repeats after one warmup, default 3),
//! `--small` (2 k-trial workload for CI smoke), `--check` (exit non-zero
//! if batched direct-access gather throughput falls below scalar, or the
//! native SIMD gather falls clearly below the pinned-scalar batched
//! loop).
//!
//! Writes `BENCH_hotpath.json`.

use ara_bench::{emit, measure_min, repeat_from_args, speedup, Table, MEASURED_SCALE_NOTE};
use ara_core::{
    analyse_layer, analyse_layer_blocked, analyse_layer_scalar, BlockedGather, CuckooHashTable,
    DirectAccessTable, EventId, LossLookup, PreparedLayer, SimdTier, SortedLookup, StdHashLookup,
    YearEventTable, DEFAULT_REGION_SLOTS,
};

/// Events per blocked sub-batch: bounds the ELT-major scratch to a few
/// MB so the gather's own output stays cache-resident.
const BLOCK_BATCH: usize = 1 << 17;

/// The pre-change hot loop: per trial, per ELT, scalar `loss()` calls.
fn scalar_pass<L: LossLookup<f64>>(lookups: &[L], yet: &YearEventTable) -> f64 {
    let mut sink = 0.0;
    for ti in 0..yet.num_trials() {
        let trial = yet.trial(ti);
        for l in lookups {
            for &e in trial.events {
                sink += l.loss(e);
            }
        }
    }
    sink
}

/// The batched hot loop: `loss_batch` over the whole stream, ELT-outer.
fn batched_pass<L: LossLookup<f64>>(lookups: &[L], events: &[EventId], out: &mut [f64]) -> f64 {
    let mut sink = 0.0;
    for l in lookups {
        l.loss_batch(events, out);
        sink += out[0];
    }
    sink
}

/// The batched direct gather pinned to an explicit SIMD tier.
fn batched_pass_tier(
    tables: &[DirectAccessTable<f64>],
    tier: SimdTier,
    events: &[EventId],
    out: &mut [f64],
) -> f64 {
    let mut sink = 0.0;
    for t in tables {
        t.loss_batch_tier(tier, events, out);
        sink += out[0];
    }
    sink
}

fn rate_row(
    table: &mut Table,
    strategy: &str,
    path: &str,
    lookups: f64,
    secs: f64,
    scalar_secs: f64,
) -> Result<f64, ara_bench::ReportError> {
    let rate = lookups / secs;
    table.row(&[
        strategy.to_string(),
        path.to_string(),
        format!("{:.1}", rate / 1e6),
        speedup(scalar_secs / secs),
    ])?;
    Ok(rate)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let repeats = repeat_from_args();
    let small = std::env::args().any(|a| a == "--small");
    let check = std::env::args().any(|a| a == "--check");
    let inputs = if small {
        ara_bench::small_inputs(7)
    } else {
        ara_bench::bench_inputs(7)
    };
    let layer = &inputs.layers[0];
    let cat = inputs.yet.catalogue_size();
    let events = inputs.yet.packed_events();
    let n = events.len();

    let elts: Vec<_> = layer.elt_indices.iter().map(|&i| &inputs.elts[i]).collect();
    let direct: Vec<DirectAccessTable<f64>> = elts
        .iter()
        .map(|e| DirectAccessTable::from_elt(e, cat))
        .collect::<Result<_, _>>()?;
    let sorted: Vec<SortedLookup<f64>> = elts.iter().map(|e| SortedLookup::from_elt(e)).collect();
    let hash: Vec<StdHashLookup<f64>> = elts.iter().map(|e| StdHashLookup::from_elt(e)).collect();
    let cuckoo: Vec<CuckooHashTable<f64>> = elts
        .iter()
        .map(|e| CuckooHashTable::from_elt(e))
        .collect::<Result<_, _>>()?;

    let total_lookups = (n * direct.len()) as f64;
    let native = ara_core::simd::active_tier();
    println!(
        "hotpath: {} events x {} ELTs = {:.1} M lookups/pass, {} timed repeats",
        n,
        direct.len(),
        total_lookups / 1e6,
        repeats
    );
    println!(
        "simd: native dispatch = {} ({} f64 lanes; ARA_SIMD overrides)",
        native.name(),
        native.lanes(8)
    );

    let mut gather = Table::new(
        "gather throughput (event-loss lookups)",
        &["strategy", "path", "Mlookups/s", "vs scalar"],
    );

    let mut out = vec![0.0f64; n];
    let mut wide = vec![0.0f64; BLOCK_BATCH.min(n) * direct.len()];

    // Direct-access table: the paper's structure and the blocked target.
    let (_, dir_scalar) = measure_min(repeats, || scalar_pass(&direct, &inputs.yet));
    let dir_scalar_rate = rate_row(
        &mut gather,
        "direct",
        "scalar",
        total_lookups,
        dir_scalar,
        dir_scalar,
    )?;
    // The batched and blocked rows pin `SimdTier::Scalar` so their
    // numbers mean the same thing they did before explicit SIMD landed;
    // the simd rows below isolate the vector kernels' contribution.
    let (_, dir_batched) = measure_min(repeats, || {
        batched_pass_tier(&direct, SimdTier::Scalar, events, &mut out)
    });
    let dir_batched_rate = rate_row(
        &mut gather,
        "direct",
        "batched",
        total_lookups,
        dir_batched,
        dir_scalar,
    )?;
    let (_, dir_portable) = measure_min(repeats, || {
        batched_pass_tier(&direct, SimdTier::Portable, events, &mut out)
    });
    rate_row(
        &mut gather,
        "direct",
        "simd (portable)",
        total_lookups,
        dir_portable,
        dir_scalar,
    )?;
    let (_, dir_native) = measure_min(repeats, || {
        batched_pass_tier(&direct, native, events, &mut out)
    });
    let dir_native_rate = rate_row(
        &mut gather,
        "direct",
        "simd (native)",
        total_lookups,
        dir_native,
        dir_scalar,
    )?;
    let mut plan = BlockedGather::new();
    let (_, dir_blocked) = measure_min(repeats, || {
        // Plan + gather per sub-batch: planning is part of the blocked
        // cost, amortized across the layer's tables.
        let mut sink = 0.0;
        for batch in events.chunks(BLOCK_BATCH) {
            plan.plan(batch, cat as usize, DEFAULT_REGION_SLOTS);
            let w = &mut wide[..batch.len() * direct.len()];
            plan.gather_tier(SimdTier::Scalar, &direct, w);
            sink += w[0];
        }
        sink
    });
    let dir_blocked_rate = rate_row(
        &mut gather,
        "direct",
        "blocked",
        total_lookups,
        dir_blocked,
        dir_scalar,
    )?;

    // The rejected strategies, scalar vs batched.
    let (_, s) = measure_min(repeats, || scalar_pass(&sorted, &inputs.yet));
    rate_row(&mut gather, "sorted", "scalar", total_lookups, s, s)?;
    let (_, b) = measure_min(repeats, || batched_pass(&sorted, events, &mut out));
    rate_row(&mut gather, "sorted", "batched", total_lookups, b, s)?;
    let (_, s) = measure_min(repeats, || scalar_pass(&hash, &inputs.yet));
    rate_row(&mut gather, "std-hash", "scalar", total_lookups, s, s)?;
    let (_, b) = measure_min(repeats, || batched_pass(&hash, events, &mut out));
    rate_row(&mut gather, "std-hash", "batched", total_lookups, b, s)?;
    let (_, s) = measure_min(repeats, || scalar_pass(&cuckoo, &inputs.yet));
    rate_row(&mut gather, "cuckoo", "scalar", total_lookups, s, s)?;
    let (_, b) = measure_min(repeats, || batched_pass(&cuckoo, events, &mut out));
    rate_row(&mut gather, "cuckoo", "batched", total_lookups, b, s)?;

    // Fused per-trial paths, end to end; outputs must stay bit-identical.
    // As above, the legacy rows pin the scalar tier; the simd rows run
    // the best fused path (blocked streaming) through the vector kernels.
    let prepared = PreparedLayer::<f64>::prepare(&inputs, layer)?.with_simd_tier(SimdTier::Scalar);
    let streamed = PreparedLayer::<f64>::prepare(&inputs, layer)?
        .with_region_slots(cat as usize)
        .with_simd_tier(SimdTier::Scalar);
    let portable = PreparedLayer::<f64>::prepare(&inputs, layer)?
        .with_region_slots(cat as usize)
        .with_simd_tier(SimdTier::Portable);
    let vector = PreparedLayer::<f64>::prepare(&inputs, layer)?
        .with_region_slots(cat as usize)
        .with_simd_tier(native);
    let (ylt_scalar, fused_scalar) =
        measure_min(repeats, || analyse_layer_scalar(&prepared, &inputs.yet));
    let (ylt_batched, fused_batched) =
        measure_min(repeats, || analyse_layer(&prepared, &inputs.yet));
    let (ylt_blocked, fused_blocked) =
        measure_min(repeats, || analyse_layer_blocked(&prepared, &inputs.yet));
    let (ylt_streamed, fused_streamed) =
        measure_min(repeats, || analyse_layer_blocked(&streamed, &inputs.yet));
    let (ylt_portable, fused_portable) =
        measure_min(repeats, || analyse_layer_blocked(&portable, &inputs.yet));
    let (ylt_native, fused_native) =
        measure_min(repeats, || analyse_layer_blocked(&vector, &inputs.yet));
    assert_eq!(
        ylt_scalar.year_losses(),
        ylt_batched.year_losses(),
        "batched fused path diverged from scalar"
    );
    assert_eq!(
        ylt_scalar.year_losses(),
        ylt_blocked.year_losses(),
        "blocked fused path diverged from scalar"
    );
    assert_eq!(
        ylt_scalar.year_losses(),
        ylt_streamed.year_losses(),
        "streamed fused path diverged from scalar"
    );
    assert_eq!(
        ylt_scalar.year_losses(),
        ylt_portable.year_losses(),
        "portable SIMD fused path diverged from scalar"
    );
    assert_eq!(
        ylt_scalar.year_losses(),
        ylt_native.year_losses(),
        "native SIMD fused path diverged from scalar"
    );

    let mut fused = Table::new(
        "fused layer analysis (lookup + financial + occurrence + aggregate)",
        &["path", "secs", "vs scalar"],
    );
    fused.row(&["scalar".into(), format!("{fused_scalar:.3}"), speedup(1.0)])?;
    fused.row(&[
        "batched (per trial)".into(),
        format!("{fused_batched:.3}"),
        speedup(fused_scalar / fused_batched),
    ])?;
    fused.row(&[
        "blocked (regions)".into(),
        format!("{fused_blocked:.3}"),
        speedup(fused_scalar / fused_blocked),
    ])?;
    fused.row(&[
        "blocked (streaming)".into(),
        format!("{fused_streamed:.3}"),
        speedup(fused_scalar / fused_streamed),
    ])?;
    fused.row(&[
        "simd (portable)".into(),
        format!("{fused_portable:.3}"),
        speedup(fused_scalar / fused_portable),
    ])?;
    fused.row(&[
        "simd (native)".into(),
        format!("{fused_native:.3}"),
        speedup(fused_scalar / fused_native),
    ])?;

    // Hardware-counter attribution: one counter-bracketed staged pass,
    // separate from the timed repeats so sampling never pollutes the
    // samples. On denied hosts every cell renders "-" and the sidecar
    // schema is unchanged.
    let mut counters = Table::new(
        "stage hardware counters (single staged pass)",
        &["stage", "cycles", "instructions", "IPC", "LLC-misses"],
    );
    let counters_live = ara_trace::counters::enable();
    let (_ylt, _stages, stage_counters) =
        ara_core::analyse_layer_staged(&prepared, &inputs.yet);
    ara_trace::counters::disable();
    for (stage, v) in stage_counters.named() {
        let cell =
            |x: Option<u64>| x.map(|c| c.to_string()).unwrap_or_else(|| "-".to_string());
        counters.row(&[
            stage.to_string(),
            cell(v.get(ara_trace::CounterKind::Cycles)),
            cell(v.get(ara_trace::CounterKind::Instructions)),
            v.ipc()
                .map(|i| format!("{i:.2}"))
                .unwrap_or_else(|| "-".to_string()),
            cell(v.get(ara_trace::CounterKind::LlcMisses)),
        ])?;
    }
    if !counters_live {
        println!(
            "counters: unavailable ({})",
            ara_trace::counters::unavailable_reason()
                .unwrap_or_else(|| "not supported on this host".to_string())
        );
    }

    emit("hotpath", &[&gather, &fused, &counters])?;
    println!("note: {MEASURED_SCALE_NOTE}");

    if check {
        // CI smoke gate: batching must never be a regression.
        if dir_batched_rate < dir_scalar_rate {
            eprintln!(
                "FAIL: batched direct gather ({:.1} M/s) below scalar ({:.1} M/s)",
                dir_batched_rate / 1e6,
                dir_scalar_rate / 1e6
            );
            std::process::exit(1);
        }
        // The native SIMD gather may only tie the scalar-tier batched
        // loop when the working set is memory-bound (or when pinned to
        // the scalar kernel via ARA_SIMD=force-scalar), but a clear drop
        // means the dispatch picked a losing kernel.
        if dir_native_rate < 0.8 * dir_batched_rate {
            eprintln!(
                "FAIL: native SIMD gather ({:.1} M/s) well below batched scalar ({:.1} M/s)",
                dir_native_rate / 1e6,
                dir_batched_rate / 1e6
            );
            std::process::exit(1);
        }
        println!(
            "check ok: batched {:.2}x, blocked {:.2}x, simd[{}] {:.2}x vs scalar",
            dir_batched_rate / dir_scalar_rate,
            dir_blocked_rate / dir_scalar_rate,
            native.name(),
            dir_native_rate / dir_scalar_rate
        );
    }
    Ok(())
}
