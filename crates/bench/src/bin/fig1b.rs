//! Figure 1b: total number of threads vs execution time on 8 cores.
//!
//! Paper reference: with all 8 cores active, raising the per-core thread
//! count to 256 (2048 threads total) drops the runtime from 135 s to
//! 125 s — a modest latency-hiding gain with diminishing returns.
//!
//! The oversubscription effect is a property of the paper's
//! OpenMP-on-i7 configuration, so this figure is model-only: rayon's
//! work-stealing pool already keeps its workers busy, and oversubscribing
//! real host threads would only add scheduler noise.

use ara_bench::report::secs;
use ara_bench::{paper_shape, Table};
use ara_engine::{Engine, MulticoreEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shape = paper_shape();
    let mut table = Table::new(
        "Figure 1b — total threads (8 cores) vs execution time",
        &[
            "threads/core",
            "total threads",
            "modeled i7-2600",
            "gain vs 1/core",
        ],
    );
    let base = MulticoreEngine::<f64>::new(8).model(&shape).total_seconds;
    for tpc in [1u32, 2, 4, 8, 16, 32, 64, 128, 256] {
        let t = MulticoreEngine::<f64>::new(8)
            .with_threads_per_core(tpc)
            .model(&shape)
            .total_seconds;
        table.row(&[
            tpc.to_string(),
            (8 * tpc).to_string(),
            secs(t),
            format!("{:.1}%", 100.0 * (1.0 - t / base)),
        ])?;
    }
    ara_bench::emit("fig1b", &[&table])?;
    println!("paper: 135 s at 8 threads -> 125 s at 2048 threads (~8% gain, diminishing)");
    Ok(())
}
