//! Figure 1b: total number of threads vs execution time on 8 cores.
//!
//! Paper reference: with all 8 cores active, raising the per-core thread
//! count to 256 (2048 threads total) drops the runtime from 135 s to
//! 125 s — a modest latency-hiding gain with diminishing returns.
//!
//! The oversubscription effect is a property of the paper's
//! OpenMP-on-i7 configuration, so the paper-scale figure is model-only:
//! rayon's work-stealing pool already keeps its workers busy. The
//! measured companion table sweeps the *host* thread count through and
//! past the core count instead, which shows the same shape on real
//! hardware: gains up to the core count, then scheduler noise.

use ara_bench::report::secs;
use ara_bench::{
    measure_labelled, measured_label, paper_shape, repeat_from_args, small_inputs, Table,
    MEASURED_SCALE_NOTE,
};
use ara_engine::{Engine, MulticoreEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shape = paper_shape();
    let mut table = Table::new(
        "Figure 1b — total threads (8 cores) vs execution time",
        &[
            "threads/core",
            "total threads",
            "modeled i7-2600",
            "gain vs 1/core",
        ],
    );
    let base = MulticoreEngine::<f64>::new(8).model(&shape).total_seconds;
    for tpc in [1u32, 2, 4, 8, 16, 32, 64, 128, 256] {
        let t = MulticoreEngine::<f64>::new(8)
            .with_threads_per_core(tpc)
            .model(&shape)
            .total_seconds;
        table.row(&[
            tpc.to_string(),
            (8 * tpc).to_string(),
            secs(t),
            format!("{:.1}%", 100.0 * (1.0 - t / base)),
        ])?;
    }

    // Measured companion: thread-count sweep of the real multicore
    // engine at 1, cores, 2x and 4x cores on the small workload.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let inputs = small_inputs(42);
    let repeats = repeat_from_args();
    let mut sweep: Vec<usize> = vec![1, cores, 2 * cores, 4 * cores];
    sweep.dedup();
    let mut measured = Table::new(
        format!("Figure 1b companion — {}", measured_label()),
        &["threads", "measured", "speedup vs 1 thread"],
    );
    let mut t1 = None;
    for threads in sweep {
        let engine = MulticoreEngine::<f64>::new(threads);
        let (_, t) = measure_labelled(&format!("fig1b.threads={threads}"), repeats, || {
            engine.analyse(&inputs).expect("valid inputs")
        });
        let t1 = *t1.get_or_insert(t);
        measured.row(&[threads.to_string(), secs(t), format!("{:.2}x", t1 / t)])?;
    }

    ara_bench::emit("fig1b", &[&table, &measured])?;
    println!("{MEASURED_SCALE_NOTE}");
    println!("paper: 135 s at 8 threads -> 125 s at 2048 threads (~8% gain, diminishing)");
    Ok(())
}
