//! Extension study: Monte Carlo convergence — why the paper runs one
//! million trials.
//!
//! "A typical YET may comprise thousands to millions of trials": this
//! binary quantifies what each order of magnitude buys. For growing
//! trial counts it runs the full analysis and reports the AAL and
//! 250-year PML with bootstrap confidence intervals; the tail metric's
//! interval shrinks like 1/√n but from a far wider start — the deep
//! tail is why a million trials (and hence GPU speed for real-time
//! pricing) is needed.

use ara_bench::report::secs;
use ara_bench::{measure_min, measured_label, repeat_from_args, Table};
use ara_engine::{Engine, GpuOptimizedEngine};
use ara_metrics::{aal_ci, pml_ci};
use ara_workload::{Scenario, ScenarioShape};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut table = Table::new(
        "Monte Carlo convergence — metric confidence vs trial count (95% bootstrap CIs)",
        &[
            "trials",
            "AAL",
            "AAL rel. half-width",
            "PML250",
            "PML250 rel. half-width",
            "analysis time",
        ],
    );
    for &trials in &[1_000usize, 4_000, 16_000, 64_000] {
        let shape = ScenarioShape {
            num_trials: trials,
            events_per_trial: 50.0,
            catalogue_size: 100_000,
            num_elts: 10,
            records_per_elt: 1_500,
            num_layers: 1,
            elts_per_layer: (10, 10),
        };
        let inputs = Scenario::new(shape, 11)
            .build_unlimited_single_layer()
            .expect("valid scenario");
        let engine = GpuOptimizedEngine::<f32>::new();
        let (out, elapsed) = measure_min(repeat_from_args(), || {
            engine.analyse(&inputs).expect("valid inputs")
        });
        let losses = out.portfolio.layer_ylt(0).year_losses().to_vec();
        let aal = aal_ci(&losses, 300, 0.95, 42);
        let pml = pml_ci(&losses, 250.0, 300, 0.95, 42);
        table.row(&[
            trials.to_string(),
            format!("{:.3e}", aal.estimate),
            format!("{:.2}%", 100.0 * aal.relative_half_width()),
            format!("{:.3e}", pml.estimate),
            format!("{:.2}%", 100.0 * pml.relative_half_width()),
            secs(elapsed),
        ])?;
    }
    ara_bench::emit("table_convergence", &[&table])?;
    println!("({})", measured_label());
    println!("reading: the AAL stabilises quickly, but the 250-year PML needs orders of");
    println!("magnitude more trials for the same relative precision — the reason production");
    println!("aggregate analysis runs 1M trials and the paper needs GPUs to do it in seconds.");
    Ok(())
}
