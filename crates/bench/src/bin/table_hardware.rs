//! Extension study: hardware projection across GPU generations.
//!
//! The paper ran on Fermi (C2075, M2090). The performance model is
//! parameterised by a device description, so the same kernels can be
//! projected onto the Kepler generation that shipped the year after
//! (Tesla K20X): more resident warps and miss-handling capacity per SMX
//! attack exactly the bottleneck the paper identifies — scattered
//! lookup latency — predicting how the 77× headline would have moved.

use ara_bench::report::{secs, speedup};
use ara_bench::{
    measure_labelled, measured_label, paper_shape, repeat_from_args, small_inputs, Table,
    MEASURED_SCALE_NOTE,
};
use ara_engine::{
    basic_kernel_profile, optimised_kernel_profile, Engine, GpuOptimizedEngine, MultiGpuEngine,
    MulticoreEngine, OptFlags, SequentialEngine,
};
use simt_sim::model::autotune::best_block_dim;
use simt_sim::model::multi_gpu::multi_gpu_timing;
use simt_sim::DeviceSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shape = paper_shape();
    let seq = SequentialEngine::<f64>::new().model(&shape).total_seconds;
    let devices = [
        DeviceSpec::tesla_c2075(),
        DeviceSpec::tesla_m2090(),
        DeviceSpec::tesla_k20x(),
    ];

    let mut table = Table::new(
        "GPU-generation projection at paper scale (1M trials x 1000 events, 15 ELTs)",
        &[
            "device",
            "basic kernel",
            "optimised kernel",
            "best block (chunk)",
            "4x devices",
            "4x speedup vs seq CPU",
        ],
    );
    for dev in &devices {
        let basic = simt_sim::model::timing::estimate_kernel(
            dev,
            &basic_kernel_profile(&shape),
            shape.trials as usize,
            256,
        )
        .total_seconds;
        // Port-and-retune: the chunk size trades shared-memory footprint
        // against occupancy, so each generation gets its own sweep (the
        // Fermi-optimal 86-event chunk strangles Kepler's doubled warp
        // capacity).
        let (chunk, best_block, opt) = [16u32, 24, 32, 48, 64, 86, 128]
            .iter()
            .filter_map(|&chunk| {
                let profile = optimised_kernel_profile(&shape, &OptFlags::all(), chunk);
                best_block_dim(dev, &profile, shape.trials as usize)
                    .map(|(block, t)| (chunk, block, t))
            })
            .min_by(|a, b| {
                a.2.total_seconds
                    .partial_cmp(&b.2.total_seconds)
                    .expect("finite times")
            })
            .expect("a feasible configuration exists");
        let profile = optimised_kernel_profile(&shape, &OptFlags::all(), chunk);
        let four = multi_gpu_timing(
            &vec![dev.clone(); 4],
            &profile,
            shape.trials as usize,
            best_block,
            120 << 20,
            8 << 30,
        );
        table.row(&[
            dev.name.clone(),
            secs(basic),
            secs(opt.total_seconds),
            format!("{best_block} (chunk {chunk})"),
            secs(four.compute_seconds),
            speedup(seq / four.compute_seconds),
        ])?;
    }
    // Measured anchor: the functional engines on *this* host at small
    // scale. The projection table above is a model; this pins the model
    // run to real wall times so a sidecar reader can tell how fast the
    // machine that produced the projection actually was.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let inputs = small_inputs(42);
    let repeats = repeat_from_args();
    let anchors: Vec<Box<dyn Engine>> = vec![
        Box::new(SequentialEngine::<f64>::new()),
        Box::new(MulticoreEngine::<f64>::new(cores)),
        Box::new(GpuOptimizedEngine::<f32>::new()),
        Box::new(MultiGpuEngine::<f32>::new(4)),
    ];
    let mut anchor_table = Table::new(
        format!("Host anchor — {}", measured_label()),
        &["engine", "measured", "speedup vs sequential"],
    );
    let mut seq_host = None;
    for engine in &anchors {
        let (_, t) = measure_labelled(
            &format!("table_hardware.{}", engine.name()),
            repeats,
            || engine.analyse(&inputs).expect("valid inputs"),
        );
        let seq_host = *seq_host.get_or_insert(t);
        anchor_table.row(&[engine.name().to_string(), secs(t), speedup(seq_host / t)])?;
    }

    ara_bench::emit("table_hardware", &[&table, &anchor_table])?;
    println!("{MEASURED_SCALE_NOTE}");
    println!("paper anchors: C2075 basic 38.49 s / optimised 20.63 s; 4x M2090 = 4.35 s = 77x.");
    println!("projection: the Fermi-tuned 86-event chunk must shrink on Kepler — the SMX");
    println!("doubled resident warps but kept 48 KB of shared memory, so occupancy (not");
    println!("bandwidth) governs the port. After re-tuning, the larger warp pool and miss-");
    println!("handling capacity push the lookup-bound kernel past Fermi, and the paper's");
    println!("headline keeps scaling with the hardware generation.");
    Ok(())
}
