//! Extension study: the cost of secondary uncertainty (paper future
//! work, Section VI).
//!
//! The point-loss kernel reads one loss per `(ELT, event)`; the
//! uncertain kernel reads a four-column loss distribution and evaluates
//! a normal quantile + `exp` per draw. On a lookup-bound device the
//! extra scattered columns dominate: the model predicts roughly a 4×
//! cost, which this binary quantifies alongside measured functional
//! runs.

use ara_bench::report::{secs, speedup};
use ara_bench::{
    measure_min, measured_label, paper_shape, repeat_from_args, small_inputs, Table,
    MEASURED_SCALE_NOTE,
};
use ara_engine::{
    analyse_uncertain_gpu, analyse_uncertain_sequential, uncertain_kernel_profile, Engine,
    GpuOptimizedEngine, MultiGpuEngine, UncertainLayerInputs,
};
use simt_sim::model::timing::estimate_kernel;
use simt_sim::{DeviceSpec, Precision};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shape = paper_shape();
    let dev = DeviceSpec::tesla_m2090();

    // Modeled: point vs uncertain kernels on one M2090 and on four.
    let point_single = MultiGpuEngine::<f32>::new(1).model(&shape).total_seconds;
    let point_four = MultiGpuEngine::<f32>::new(4).model(&shape).total_seconds;
    let unc_profile = uncertain_kernel_profile(&shape, Precision::F32);
    let unc_single = estimate_kernel(&dev, &unc_profile, shape.trials as usize, 32).total_seconds;
    let unc_four = estimate_kernel(&dev, &unc_profile, shape.trials as usize / 4, 32).total_seconds;

    let mut table = Table::new(
        "Secondary uncertainty — modeled cost at paper scale (Tesla M2090)",
        &["kernel", "1 GPU", "4 GPUs", "vs point"],
    );
    table.row(&[
        "point losses (paper's kernel)".into(),
        secs(point_single),
        secs(point_four),
        speedup(1.0),
    ])?;
    table.row(&[
        "secondary uncertainty (capped log-normal)".into(),
        secs(unc_single),
        secs(unc_four),
        format!("{:.2}x slower", unc_single / point_single),
    ])?;

    // Measured: functional engines at small scale.
    let point_inputs = small_inputs(777);
    let unc = UncertainLayerInputs::from_point_inputs(&point_inputs, 0, 0.8, 10.0, 99)
        .expect("valid point inputs");

    let (_, t_point) = measure_min(repeat_from_args(), || {
        GpuOptimizedEngine::<f32>::new()
            .analyse(&point_inputs)
            .expect("valid inputs")
    });
    let (seq_ylt, t_seq) = measure_min(repeat_from_args(), || {
        analyse_uncertain_sequential::<f64>(&unc).expect("valid inputs")
    });
    let (gpu_ylt, t_gpu) = measure_min(repeat_from_args(), || {
        analyse_uncertain_gpu::<f32>(&unc, 4, 32).expect("valid inputs")
    });

    let mut measured = Table::new(
        format!("Functional uncertain engines, {}", measured_label()),
        &["engine", "measured", "vs point kernel"],
    );
    measured.row(&[
        "point chunked kernel (f32)".into(),
        secs(t_point),
        speedup(1.0),
    ])?;
    measured.row(&[
        "uncertain sequential (f64)".into(),
        secs(t_seq),
        format!("{:.2}x slower", t_seq / t_point),
    ])?;
    measured.row(&[
        "uncertain chunked kernel, 4 devices (f32)".into(),
        secs(t_gpu),
        format!("{:.2}x slower", t_gpu / t_point),
    ])?;
    ara_bench::emit("table_uncertainty", &[&table, &measured])?;

    let drift = seq_ylt.max_rel_diff(&gpu_ylt).expect("equal trial counts");
    println!("{MEASURED_SCALE_NOTE}");
    println!(
        "functional check: f32 4-device uncertain YLT vs f64 sequential, max rel diff {drift:.2e}"
    );
    println!("takeaway: on a lookup-bound device the distribution columns (4 scattered reads");
    println!("instead of 1) set the price of secondary uncertainty; the quantile math is ~free.");
    Ok(())
}
