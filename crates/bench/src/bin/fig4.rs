//! Figure 4: threads per block vs execution time on four GPUs
//! (optimised kernel).
//!
//! Paper reference: best 4.35 s at 32 threads per block — the block
//! equals the warp size, "whereby an entire block of threads can be
//! swapped when high latency operations occur". 16 wastes warp lanes,
//! 64 presses against the shared-memory chunk allocation, and beyond 64
//! "experiments could not be pursued … due to the limitation on the
//! block size the shared memory can use".

use ara_bench::report::secs;
use ara_bench::{
    bench_inputs, measure_min, measured_label, paper_shape, repeat_from_args, Table,
    MEASURED_SCALE_NOTE,
};
use ara_engine::{Engine, MultiGpuEngine, PlatformDetail};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shape = paper_shape();
    let inputs = bench_inputs(2024);

    let mut table = Table::new(
        "Figure 4 — threads per block vs time (4x Tesla M2090, optimised kernel)",
        &[
            "threads/block",
            "modeled time",
            "shared/block",
            "feasible",
            &measured_label(),
        ],
    );
    for block in [16u32, 32, 48, 64, 96, 128] {
        let engine = MultiGpuEngine::<f32>::new(4).with_block_dim(block);
        let m = engine.model(&shape);
        let shared = match &m.detail {
            PlatformDetail::MultiGpu(t) => {
                // Shared bytes per block from the per-device occupancy
                // input: derive from the profile-driven limiter display.
                let _ = t;
                let chunk = ara_engine::gpu_opt::DEFAULT_CHUNK as usize;
                let per_thread = chunk * (4 + 4); // chunk x (id + f32 slot)
                ara_bench::bytes(512 + per_thread * block as usize)
            }
            _ => "-".to_string(),
        };
        let measured = if m.feasible {
            let (_, s) = measure_min(repeat_from_args(), || {
                engine.analyse(&inputs).expect("valid inputs")
            });
            secs(s)
        } else {
            "-".to_string()
        };
        table.row(&[
            block.to_string(),
            secs(m.total_seconds),
            shared,
            if m.feasible {
                "yes".into()
            } else {
                "no (shared overflow)".into()
            },
            measured,
        ])?;
    }
    ara_bench::emit("fig4", &[&table])?;
    println!("{MEASURED_SCALE_NOTE}");
    println!("paper: best 4.35 s at 32 threads/block; >64 impossible (shared-memory overflow).");
    Ok(())
}
