//! Figure 2: threads per CUDA block vs execution time, basic GPU kernel.
//!
//! Paper reference (Tesla C2075): at least 128 threads per block are
//! needed; 256 is best; beyond 256 improvements diminish greatly. The
//! mechanism is occupancy — 128-thread blocks cap at 8 resident blocks
//! = 32 warps per SM, while 192–512 reach the full 48 warps.

use ara_bench::report::secs;
use ara_bench::{
    measure_min, measured_label, paper_shape, repeat_from_args, small_inputs, Table,
    MEASURED_SCALE_NOTE,
};
use ara_engine::{Engine, GpuBasicEngine, PlatformDetail};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shape = paper_shape();
    let inputs = small_inputs(2024);

    let mut table = Table::new(
        "Figure 2 — threads per block vs time (basic kernel, Tesla C2075)",
        &[
            "threads/block",
            "modeled C2075",
            "occupancy (warps/SM)",
            &measured_label(),
        ],
    );
    for block in [128u32, 192, 256, 320, 384, 448, 512, 576, 640] {
        let engine = GpuBasicEngine::new().with_block_dim(block);
        let m = engine.model(&shape);
        let warps = match &m.detail {
            PlatformDetail::Gpu(kt) => kt.occupancy.warps_per_sm.to_string(),
            _ => "-".to_string(),
        };
        let (_, measured) = measure_min(repeat_from_args(), || {
            engine.analyse(&inputs).expect("valid inputs")
        });
        table.row(&[
            block.to_string(),
            secs(m.total_seconds),
            warps,
            secs(measured),
        ])?;
    }
    ara_bench::emit("fig2", &[&table])?;
    println!("{MEASURED_SCALE_NOTE}");
    println!("paper: best at 256 threads/block (38.49 s); below 128 the hardware is underused.");
    println!("note: the measured column exercises the functional SIMT executor, whose block size");
    println!("only affects host-side work partitioning, not memory-system behaviour.");
    Ok(())
}
