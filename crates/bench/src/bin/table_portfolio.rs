//! Extension study: portfolio-scale analysis — many layers, not one.
//!
//! The paper's evaluation prices a single layer; its introduction
//! motivates portfolios of "tens of thousands of contracts". This study
//! sweeps the layer count and compares the two parallel decompositions
//! available on a multi-core host: trial-granular (the paper's
//! one-thread-per-trial design, layers processed back-to-back) versus
//! layer-granular (whole layers distributed across workers, amortising
//! the per-layer direct-table preprocessing).

use ara_bench::report::secs;
use ara_bench::{measure_min, measured_label, repeat_from_args, Table};
use ara_engine::{analyse_portfolio_parallel, Engine, MulticoreEngine, SequentialEngine};
use ara_workload::{Scenario, ScenarioShape};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut table = Table::new(
        "Portfolio scaling — layers vs analysis time (multi-core decompositions)",
        &[
            "layers",
            "sequential",
            "trial-parallel (paper design)",
            "layer-parallel",
        ],
    );
    for &layers in &[1usize, 4, 16, 64] {
        let shape = ScenarioShape {
            num_trials: 1_000,
            events_per_trial: 40.0,
            catalogue_size: 50_000,
            num_elts: 20,
            records_per_elt: 800,
            num_layers: layers,
            elts_per_layer: (3, 10),
        };
        let inputs = Scenario::new(shape, 8).build().expect("valid scenario");
        let (_, t_seq) = measure_min(repeat_from_args(), || {
            SequentialEngine::<f64>::new()
                .analyse(&inputs)
                .expect("valid inputs")
        });
        let (_, t_trial) = measure_min(repeat_from_args(), || {
            MulticoreEngine::<f64>::new(4)
                .analyse(&inputs)
                .expect("valid inputs")
        });
        let (_, t_layer) = measure_min(repeat_from_args(), || {
            analyse_portfolio_parallel::<f64>(&inputs, 4).expect("valid inputs")
        });
        table.row(&[
            layers.to_string(),
            secs(t_seq),
            secs(t_trial),
            secs(t_layer),
        ])?;
    }
    ara_bench::emit("table_portfolio", &[&table])?;
    println!("({})", measured_label());
    println!("with many small layers the layer-granular split amortises each layer's");
    println!("direct-table preprocessing across workers; with one big layer the paper's");
    println!("trial-granular split is the only parallelism available. All three produce");
    println!("bit-identical YLTs.");
    Ok(())
}
