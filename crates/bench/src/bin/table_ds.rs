//! §III: the ELT data-structure choice.
//!
//! The paper argues for direct access tables — one memory access per
//! lookup at the cost of catalogue-sized memory — over binary search
//! (`O(log n)` accesses), hashing (cuckoo hashing cited as the
//! constant-time compact alternative), and over the "combined" layout
//! that fuses a layer's 15 ELTs into one table. This binary measures
//! all of them on the same workload: random event lookups with the
//! bench-scale hit density.

use ara_bench::report::{bytes, secs};
use ara_bench::{measure_min, repeat_from_args, Table};
use ara_core::{
    BlockDeltaLookup, CombinedDirectTable, CuckooHashTable, DirectAccessTable, EventId,
    EventLossTable, LossLookup, PagedDirectTable, SortedLookup, StdHashLookup,
};
use ara_workload::{EltGenerator, EventCatalogue};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CATALOGUE: u32 = 2_000_000;
const RECORDS: usize = 20_000;
const LOOKUPS: usize = 4_000_000;

fn lookup_benchmark<L: LossLookup<f64>>(table: &L, queries: &[EventId]) -> (f64, f64) {
    let (sum, secs) = measure_min(repeat_from_args(), || {
        let mut acc = 0.0;
        for &q in queries {
            acc += table.loss(q);
        }
        acc
    });
    (sum, secs)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's §III example: a 2,000,000-event catalogue and an ELT
    // of 20,000 non-zero records.
    let catalogue = EventCatalogue::uniform(CATALOGUE, 1000.0);
    let elt = EltGenerator::new(&catalogue, RECORDS, 99)
        .generate_one(0)
        .expect("generator produces valid ELTs");
    let mut rng = StdRng::seed_from_u64(4242);
    let queries: Vec<EventId> = (0..LOOKUPS)
        .map(|_| EventId(rng.gen_range(0..CATALOGUE)))
        .collect();

    let direct = DirectAccessTable::<f64>::from_elt(&elt, CATALOGUE).expect("fits catalogue");
    let sorted = SortedLookup::<f64>::from_elt(&elt);
    let hash = StdHashLookup::<f64>::from_elt(&elt);
    let cuckoo = CuckooHashTable::<f64>::from_elt(&elt).expect("cuckoo build succeeds");
    let paged = PagedDirectTable::<f64>::from_elt(&elt, CATALOGUE).expect("fits catalogue");
    let delta = BlockDeltaLookup::<f64>::from_elt(&elt);

    let mut table = Table::new(
        format!(
            "ELT lookup structures — {RECORDS} records in a {CATALOGUE}-event catalogue, \
             {LOOKUPS} random lookups"
        ),
        &[
            "structure",
            "memory",
            "accesses/lookup",
            "time",
            "ns/lookup",
            "checksum",
        ],
    );
    let mut row = |name: &str,
                   mem: usize,
                   acc: f64,
                   sum: f64,
                   secs_v: f64|
     -> Result<(), ara_bench::ReportError> {
        table.row(&[
            name.to_string(),
            bytes(mem),
            format!("{acc:.1}"),
            secs(secs_v),
            format!("{:.1}", secs_v * 1e9 / LOOKUPS as f64),
            format!("{sum:.3e}"),
        ])?;
        Ok(())
    };
    let (s, t) = lookup_benchmark(&direct, &queries);
    row(
        "direct access (paper's choice)",
        direct.memory_bytes(),
        1.0,
        s,
        t,
    )?;
    let (s, t) = lookup_benchmark(&sorted, &queries);
    row(
        "sorted + binary search",
        LossLookup::<f64>::memory_bytes(&sorted),
        LossLookup::<f64>::accesses_per_lookup(&sorted),
        s,
        t,
    )?;
    let (s, t) = lookup_benchmark(&hash, &queries);
    row(
        "std::HashMap (SipHash)",
        LossLookup::<f64>::memory_bytes(&hash),
        LossLookup::<f64>::accesses_per_lookup(&hash),
        s,
        t,
    )?;
    let (s, t) = lookup_benchmark(&cuckoo, &queries);
    row(
        "cuckoo hash (Pagh & Rodler)",
        LossLookup::<f64>::memory_bytes(&cuckoo),
        LossLookup::<f64>::accesses_per_lookup(&cuckoo),
        s,
        t,
    )?;
    // The future-work compressed representations (paper, Section VI).
    let (s, t) = lookup_benchmark(&paged, &queries);
    row(
        "paged direct (compressed, future work)",
        LossLookup::<f64>::memory_bytes(&paged),
        LossLookup::<f64>::accesses_per_lookup(&paged),
        s,
        t,
    )?;
    let (s, t) = lookup_benchmark(&delta, &queries);
    row(
        "block-delta (compressed, future work)",
        LossLookup::<f64>::memory_bytes(&delta),
        LossLookup::<f64>::accesses_per_lookup(&delta),
        s,
        t,
    )?;

    // The combined-table layout the paper rejects: 15 ELTs fused, whole
    // rows fetched per event.
    let elts: Vec<EventLossTable> = EltGenerator::new(&catalogue, RECORDS, 123)
        .generate(15)
        .expect("generator produces valid ELTs");
    let refs: Vec<&EventLossTable> = elts.iter().collect();
    let combined = CombinedDirectTable::<f64>::from_elts(&refs, CATALOGUE).expect("fits");
    let independents: Vec<DirectAccessTable<f64>> = elts
        .iter()
        .map(|e| DirectAccessTable::from_elt(e, CATALOGUE).expect("fits"))
        .collect();

    let (sum_c, t_combined) = measure_min(repeat_from_args(), || {
        let mut acc = 0.0;
        for &q in &queries[..LOOKUPS / 4] {
            for &l in combined.row(q) {
                acc += l;
            }
        }
        acc
    });
    let (sum_i, t_indep) = measure_min(repeat_from_args(), || {
        let mut acc = 0.0;
        for &q in &queries[..LOOKUPS / 4] {
            for t in &independents {
                acc += t.loss(q);
            }
        }
        acc
    });
    let mut table2 = Table::new(
        "Independent vs combined direct tables (15 ELTs per layer)",
        &["layout", "memory", "time (1M x 15 lookups)", "checksum"],
    );
    table2.row(&[
        "15 independent tables (paper's first design)".into(),
        bytes(independents.iter().map(|t| t.memory_bytes()).sum()),
        secs(t_indep),
        format!("{sum_i:.3e}"),
    ])?;
    table2.row(&[
        "combined row-major table (paper's second design)".into(),
        bytes(combined.memory_bytes()),
        secs(t_combined),
        format!("{sum_c:.3e}"),
    ])?;
    ara_bench::emit("table_ds", &[&table, &table2])?;
    println!("paper: direct access wins on accesses/lookup (1 vs log2(20000) ~ 14.3 vs 2-3 for");
    println!("hashing) at ~100x the memory; the combined table was slower on the GPU because");
    println!("threads must first publish which event they need before a row can be staged.");
    Ok(())
}
