//! Figure 5: average total time for the five implementations.
//!
//! Paper reference (1 layer, 15 loss sets, 1 M trials × 1 000 events):
//!
//! | implementation | paper time | speedup |
//! |---|---|---|
//! | sequential CPU | 337.47 s | 1.0× |
//! | multi-core CPU | 123.5 s | 2.7× |
//! | basic GPU (C2075) | 38.49 s | 8.8× |
//! | optimised GPU (C2075) | 20.63 s | 16.4× |
//! | optimised 4× GPU (M2090) | 4.35 s | 77.6× |

use ara_bench::report::{secs, speedup};
use ara_bench::{
    bench_inputs, measure_min, measured_label, paper_shape, repeat_from_args, Table,
    MEASURED_SCALE_NOTE,
};
use ara_engine::{
    Engine, GpuBasicEngine, GpuOptimizedEngine, MultiGpuEngine, MulticoreEngine, SequentialEngine,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shape = paper_shape();
    let inputs = bench_inputs(2024);

    // The multicore engine models the paper's 8 hardware threads; its
    // measured time is naturally bounded by this host's actual cores.
    let engines: Vec<(Box<dyn Engine>, f64)> = vec![
        (Box::new(SequentialEngine::<f64>::new()), 337.47),
        (Box::new(MulticoreEngine::<f64>::new(8)), 123.5),
        (Box::new(GpuBasicEngine::new()), 38.49),
        (Box::new(GpuOptimizedEngine::<f32>::new()), 20.63),
        (Box::new(MultiGpuEngine::<f32>::new(4)), 4.35),
    ];

    let mut table = Table::new(
        "Figure 5 — total execution time, all five implementations",
        &[
            "implementation",
            "paper",
            "paper speedup",
            "modeled",
            "modeled speedup",
            &measured_label(),
            "measured speedup",
        ],
    );
    let mut modeled_base = 0.0;
    let mut measured_base = 0.0;
    for (i, (engine, paper)) in engines.iter().enumerate() {
        let m = engine.model(&shape);
        let (_, measured) = measure_min(repeat_from_args(), || {
            engine.analyse(&inputs).expect("valid inputs")
        });
        if i == 0 {
            modeled_base = m.total_seconds;
            measured_base = measured;
        }
        table.row(&[
            engine.name().to_string(),
            secs(*paper),
            speedup(337.47 / paper),
            secs(m.total_seconds),
            speedup(modeled_base / m.total_seconds),
            secs(measured),
            speedup(measured_base / measured),
        ])?;
    }
    ara_bench::emit("fig5", &[&table])?;
    println!("{MEASURED_SCALE_NOTE}");
    println!("key result: the multi-GPU implementation is ~77x the sequential CPU (paper);");
    println!("the model reproduces the ordering and the approximate factors.");
    Ok(())
}
