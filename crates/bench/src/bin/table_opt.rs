//! §IV-B: the GPU optimisation ablation.
//!
//! Paper reference: the four optimisations — chunking, loop unrolling,
//! reduced precision (double→float), and migrating data to the kernel
//! registry — together take the C2075 kernel from 38.47 s down to
//! 20.63 s (≈1.9×). The paper reports only the combined effect; this
//! table adds a leave-one-out ablation from the performance model.

use ara_bench::report::{secs, speedup};
use ara_bench::{
    bench_inputs, measure_min, measured_label, paper_shape, repeat_from_args, Table,
    MEASURED_SCALE_NOTE,
};
use ara_engine::{Engine, GpuBasicEngine, GpuOptimizedEngine, OptFlags};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shape = paper_shape();
    let inputs = bench_inputs(2024);

    let basic = GpuBasicEngine::new().model(&shape).total_seconds;
    let full = GpuOptimizedEngine::<f32>::new().model(&shape).total_seconds;

    let mut table = Table::new(
        "GPU optimisation ablation (Tesla C2075, modeled at paper scale)",
        &["configuration", "modeled", "vs basic", "vs optimised"],
    );
    table.row(&[
        "basic kernel (f64, global memory)".into(),
        secs(basic),
        speedup(1.0),
        format!("{:.2}x slower", basic / full),
    ])?;
    let ablations = [
        (
            "without chunking",
            OptFlags {
                chunking: false,
                ..OptFlags::all()
            },
        ),
        (
            "without loop unrolling",
            OptFlags {
                unrolling: false,
                ..OptFlags::all()
            },
        ),
        (
            "without reduced precision",
            OptFlags {
                reduced_precision: false,
                ..OptFlags::all()
            },
        ),
        (
            "without register migration",
            OptFlags {
                registers: false,
                ..OptFlags::all()
            },
        ),
    ];
    for (name, flags) in ablations {
        let t = GpuOptimizedEngine::<f32>::new()
            .with_flags(flags)
            .model(&shape)
            .total_seconds;
        table.row(&[
            name.to_string(),
            secs(t),
            speedup(basic / t),
            format!("{:.2}x slower", t / full),
        ])?;
    }
    table.row(&[
        "fully optimised kernel".into(),
        secs(full),
        speedup(basic / full),
        "1.00x".into(),
    ])?;

    // Measured: the two functional kernels really differ (per-event
    // global intermediates vs chunked register accumulation), and the
    // f32/f64 code paths really differ.
    let (_, t_basic) = measure_min(repeat_from_args(), || {
        GpuBasicEngine::new()
            .analyse(&inputs)
            .expect("valid inputs")
    });
    let (_, t_opt64) = measure_min(repeat_from_args(), || {
        GpuOptimizedEngine::<f64>::new()
            .analyse(&inputs)
            .expect("valid inputs")
    });
    let (_, t_opt32) = measure_min(repeat_from_args(), || {
        GpuOptimizedEngine::<f32>::new()
            .analyse(&inputs)
            .expect("valid inputs")
    });
    let mut measured = Table::new(
        format!("Functional kernels, {}", measured_label()),
        &["kernel", "measured", "vs basic"],
    );
    measured.row(&[
        "basic (per-event arrays, f64)".into(),
        secs(t_basic),
        speedup(1.0),
    ])?;
    measured.row(&[
        "chunked (register accumulation, f64)".into(),
        secs(t_opt64),
        speedup(t_basic / t_opt64),
    ])?;
    measured.row(&[
        "chunked (register accumulation, f32)".into(),
        secs(t_opt32),
        speedup(t_basic / t_opt32),
    ])?;
    ara_bench::emit("table_opt", &[&table, &measured])?;
    println!("{MEASURED_SCALE_NOTE}");
    println!("paper: 38.47 s -> 20.63 s (~1.9x) from the four optimisations combined.");
    println!("note: the optimisations interact — the chunked kernel runs at low occupancy");
    println!("(shared memory bound), so removing the unrolling/register MLP that compensates");
    println!("costs more than any single optimisation contributes on its own.");
    Ok(())
}
