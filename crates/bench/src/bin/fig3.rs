//! Figure 3: number of GPUs vs execution time (3a) and parallel
//! efficiency (3b), optimised kernel on the four-M2090 machine.
//!
//! Paper reference: best average 4.35 s on four GPUs — ~5× faster than
//! the C2075 and ~4× faster than a single M2090 of the same machine —
//! at ≈100% efficiency. Lookup drops from 20.1 s to 4.25 s, financial +
//! layer terms from 0.11 s to 0.02 s.

use ara_bench::report::{pct, secs, speedup};
use ara_bench::{
    bench_inputs, measure_min, measured_label, paper_shape, repeat_from_args, Table,
    MEASURED_SCALE_NOTE,
};
use ara_engine::{Engine, MultiGpuEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shape = paper_shape();
    let inputs = bench_inputs(2024);

    let one = MultiGpuEngine::<f32>::new(1).model(&shape);
    let mut table = Table::new(
        "Figure 3 — number of GPUs vs time and efficiency (Tesla M2090, optimised kernel)",
        &[
            "GPUs",
            "modeled time",
            "modeled lookup",
            "modeled numeric",
            "speedup",
            "efficiency",
            &measured_label(),
        ],
    );
    for n in 1..=4usize {
        let engine = MultiGpuEngine::<f32>::new(n);
        let m = engine.model(&shape);
        let s = one.total_seconds / m.total_seconds;
        let (_, measured) = measure_min(repeat_from_args(), || {
            engine.analyse(&inputs).expect("valid inputs")
        });
        table.row(&[
            n.to_string(),
            secs(m.total_seconds),
            secs(m.breakdown.lookup),
            secs(m.breakdown.financial + m.breakdown.layer),
            speedup(s),
            pct(100.0 * s / n as f64),
            secs(measured),
        ])?;
    }
    ara_bench::emit("fig3", &[&table])?;
    println!("{MEASURED_SCALE_NOTE}");
    println!(
        "paper: 4 GPUs = 4.35 s (~4x one M2090, ~100% efficiency); lookup 20.1 s -> 4.25 s, \
         numeric 0.11 s -> 0.02 s."
    );
    println!("note: measured multi-GPU splits this host's cores between simulated devices, so");
    println!("measured wall time stays roughly flat; the modeled column shows the device scaling.");
    Ok(())
}
