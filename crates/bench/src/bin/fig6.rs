//! Figure 6: percentage of time per activity, per platform.
//!
//! Paper reference points: the sequential CPU spends 222.61 s (66%) on
//! loss-set lookup and 104.67 s (31%) on financial/layer-term numerics;
//! on the multiple GPU, lookup is 4.25 s — 97.54% of the total — while
//! the numeric computations take 0.02 s (≈5000× the sequential rate).

use ara_bench::report::{pct, secs};
use ara_bench::{
    measure_labelled, measured_label, paper_shape, repeat_from_args, small_inputs, Table,
    MEASURED_SCALE_NOTE,
};
use ara_engine::{
    Engine, GpuBasicEngine, GpuOptimizedEngine, MultiGpuEngine, MulticoreEngine, SequentialEngine,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shape = paper_shape();
    let engines: Vec<Box<dyn Engine>> = vec![
        Box::new(SequentialEngine::<f64>::new()),
        Box::new(MulticoreEngine::<f64>::new(8)),
        Box::new(GpuBasicEngine::new()),
        Box::new(GpuOptimizedEngine::<f32>::new()),
        Box::new(MultiGpuEngine::<f32>::new(4)),
    ];

    let mut table = Table::new(
        "Figure 6 — modeled % of time per activity (paper scale)",
        &[
            "implementation",
            "total",
            "fetch events",
            "loss lookup",
            "financial terms",
            "layer terms",
            "lookup seconds",
            "numeric seconds",
        ],
    );
    for engine in &engines {
        let m = engine.model(&shape);
        let (f, l, fi, la) = m.breakdown.percentages();
        table.row(&[
            engine.name().to_string(),
            secs(m.total_seconds),
            pct(f),
            pct(l),
            pct(fi),
            pct(la),
            secs(m.breakdown.lookup),
            secs(m.breakdown.financial + m.breakdown.layer),
        ])?;
    }
    // Measured companion: the same percentage split from the real
    // engines' stage instrumentation (ara-trace) on the small workload.
    // The recorder stays enabled across the timed repeats so every run
    // reports `measured` — the sidecar samples therefore include the
    // (gated, small) instrumentation cost.
    let inputs = small_inputs(42);
    let repeats = repeat_from_args();
    let mut measured = Table::new(
        format!("Figure 6 companion — {}", measured_label()),
        &[
            "implementation",
            "total",
            "fetch events",
            "loss lookup",
            "financial terms",
            "layer terms",
        ],
    );
    ara_trace::recorder().enable(ara_trace::Level::Info);
    for engine in &engines {
        let (out, total) = measure_labelled(&format!("fig6.{}", engine.name()), repeats, || {
            engine.analyse(&inputs).expect("valid inputs")
        });
        let b = out
            .measured
            .expect("recorder enabled, engines report stage times");
        let (f, l, fi, la) = b.percentages();
        measured.row(&[
            engine.name().to_string(),
            secs(total),
            pct(f),
            pct(l),
            pct(fi),
            pct(la),
        ])?;
    }
    let _ = ara_trace::recorder().drain();
    ara_trace::recorder().disable();

    ara_bench::emit("fig6", &[&table, &measured])?;
    println!("{MEASURED_SCALE_NOTE}");
    println!("paper anchors: sequential lookup 222.61 s (>65%), numeric 104.67 s (~31%);");
    println!("multi-GPU lookup 4.25 s (97.54% of 4.33 s), numeric 0.02 s (~5000x sequential);");
    println!(
        "fetch: >10 s (seq) -> ~6 s (multicore) -> ~4 s (GPU) -> <0.5 s (opt) -> <0.1 s (4 GPUs)."
    );
    Ok(())
}
