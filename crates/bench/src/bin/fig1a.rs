//! Figure 1a: number of cores vs execution time on the multi-core CPU.
//!
//! Paper reference points (1 M trials × 1 000 events, 1 layer × 15
//! ELTs on an i7-2600): 337.47 s sequential; speedups 1.5× at 2 cores,
//! 2.2× at 4, 2.6× at 8 — saturating because the random ELT lookups are
//! memory-bandwidth-bound.

use ara_bench::report::{secs, speedup};
use ara_bench::{
    bench_inputs, measure_min, measured_label, paper_shape, repeat_from_args, Table,
    MEASURED_SCALE_NOTE,
};
use ara_engine::{Engine, MulticoreEngine, SequentialEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shape = paper_shape();
    let inputs = bench_inputs(2024);

    let seq_model = SequentialEngine::<f64>::new().model(&shape).total_seconds;
    let (_, seq_measured) = measure_min(repeat_from_args(), || {
        SequentialEngine::<f64>::new()
            .analyse(&inputs)
            .expect("valid inputs")
    });

    let mut table = Table::new(
        "Figure 1a — cores vs execution time (multi-core CPU)",
        &[
            "cores",
            "modeled i7-2600",
            "modeled speedup",
            "paper speedup",
            &measured_label(),
            "measured speedup",
        ],
    );
    let paper = [(1, 1.0), (2, 1.5), (4, 2.2), (8, 2.6)];
    for n in 1..=8u32 {
        let modeled = if n == 1 {
            seq_model
        } else {
            MulticoreEngine::<f64>::new(n as usize)
                .model(&shape)
                .total_seconds
        };
        let measured = if n == 1 {
            seq_measured
        } else {
            measure_min(repeat_from_args(), || {
                MulticoreEngine::<f64>::new(n as usize)
                    .analyse(&inputs)
                    .expect("valid inputs")
            })
            .1
        };
        let paper_s = paper
            .iter()
            .find(|&&(c, _)| c == n)
            .map(|&(_, s)| speedup(s))
            .unwrap_or_else(|| "-".to_string());
        table.row(&[
            n.to_string(),
            secs(modeled),
            speedup(seq_model / modeled),
            paper_s,
            if measured.is_nan() {
                "-".into()
            } else {
                secs(measured)
            },
            if measured.is_nan() {
                "-".into()
            } else {
                speedup(seq_measured / measured)
            },
        ])?;
    }
    ara_bench::emit("fig1a", &[&table])?;
    println!("{MEASURED_SCALE_NOTE}");
    println!(
        "paper: 337.47 s sequential -> 123.5 s at 8 threads; modeled: {} -> {}",
        secs(seq_model),
        secs(MulticoreEngine::<f64>::new(8).model(&shape).total_seconds)
    );
    Ok(())
}
