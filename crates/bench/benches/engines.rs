//! Criterion end-to-end benchmark of all five engines at a reduced
//! measured scale (the Figure 5 comparison, measured).

use ara_engine::{
    Engine, GpuBasicEngine, GpuOptimizedEngine, MultiGpuEngine, MulticoreEngine, SequentialEngine,
};
use ara_workload::{Scenario, ScenarioShape};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn benches(c: &mut Criterion) {
    let shape = ScenarioShape {
        num_trials: 2_000,
        events_per_trial: 100.0,
        catalogue_size: 100_000,
        num_elts: 15,
        records_per_elt: 1_500,
        num_layers: 1,
        elts_per_layer: (15, 15),
    };
    let inputs = Scenario::new(shape, 17).build().expect("valid scenario");

    let engines: Vec<Box<dyn Engine>> = vec![
        Box::new(SequentialEngine::<f64>::new()),
        Box::new(MulticoreEngine::<f64>::new(8)),
        Box::new(GpuBasicEngine::new()),
        Box::new(GpuOptimizedEngine::<f32>::new()),
        Box::new(MultiGpuEngine::<f32>::new(4)),
    ];
    let mut group = c.benchmark_group("engines");
    group.sample_size(10);
    for engine in &engines {
        group.bench_function(engine.name(), |b| {
            b.iter(|| black_box(engine.analyse(&inputs).expect("valid inputs")))
        });
    }
    group.finish();
}

criterion_group!(engines, benches);
criterion_main!(engines);
