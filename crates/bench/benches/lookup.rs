//! Criterion microbenchmark for the §III lookup-structure study (the
//! companion of the `table_ds` binary): time per random lookup for each
//! ELT representation.

use ara_core::{
    BlockDeltaLookup, CuckooHashTable, DirectAccessTable, EventId, LossLookup, PagedDirectTable,
    SortedLookup, StdHashLookup,
};
use ara_workload::{EltGenerator, EventCatalogue};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const CATALOGUE: u32 = 200_000;
const RECORDS: usize = 2_000;
const BATCH: usize = 10_000;

fn queries() -> Vec<EventId> {
    let mut rng = StdRng::seed_from_u64(77);
    (0..BATCH)
        .map(|_| EventId(rng.gen_range(0..CATALOGUE)))
        .collect()
}

fn bench_structure<L: LossLookup<f64>>(c: &mut Criterion, name: &str, table: &L) {
    let qs = queries();
    c.bench_function(&format!("lookup/{name}"), |b| {
        b.iter_batched(
            || qs.clone(),
            |qs| {
                let mut acc = 0.0;
                for q in qs {
                    acc += table.loss(q);
                }
                black_box(acc)
            },
            BatchSize::SmallInput,
        )
    });
}

fn benches(c: &mut Criterion) {
    let catalogue = EventCatalogue::uniform(CATALOGUE, 100.0);
    let elt = EltGenerator::new(&catalogue, RECORDS, 5)
        .generate_one(0)
        .expect("valid ELT");
    let direct = DirectAccessTable::<f64>::from_elt(&elt, CATALOGUE).expect("fits");
    let sorted = SortedLookup::<f64>::from_elt(&elt);
    let hash = StdHashLookup::<f64>::from_elt(&elt);
    let cuckoo = CuckooHashTable::<f64>::from_elt(&elt).expect("builds");

    let paged = PagedDirectTable::<f64>::from_elt(&elt, CATALOGUE).expect("fits");
    let delta = BlockDeltaLookup::<f64>::from_elt(&elt);

    bench_structure(c, "direct-access", &direct);
    bench_structure(c, "binary-search", &sorted);
    bench_structure(c, "std-hashmap", &hash);
    bench_structure(c, "cuckoo-hash", &cuckoo);
    bench_structure(c, "paged-direct", &paged);
    bench_structure(c, "block-delta", &delta);
}

criterion_group! {
    name = lookup;
    config = Criterion::default().sample_size(20);
    targets = benches
}
criterion_main!(lookup);
