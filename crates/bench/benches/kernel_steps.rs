//! Criterion microbenchmark of the algorithm's four steps in isolation
//! (feeding Figure 6's activity split): event fetch, loss lookup,
//! financial terms, layer terms.

use ara_core::{
    apply_aggregate_stepwise, xl_clamp, DirectAccessTable, FinancialTerms, LayerTerms, LossLookup,
    PreparedLayer,
};
use ara_workload::{Scenario, ScenarioShape};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn benches(c: &mut Criterion) {
    let shape = ScenarioShape {
        num_trials: 500,
        events_per_trial: 100.0,
        catalogue_size: 100_000,
        num_elts: 15,
        records_per_elt: 1_500,
        num_layers: 1,
        elts_per_layer: (15, 15),
    };
    let inputs = Scenario::new(shape, 3).build().expect("valid scenario");
    let layer = &inputs.layers[0];
    let prepared = PreparedLayer::<f64>::prepare(&inputs, layer).expect("prepares");

    // Step 0 — fetch: stream every trial's events.
    c.bench_function("steps/fetch-events", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for trial in inputs.yet.trials() {
                for &e in trial.events {
                    acc = acc.wrapping_add(e.0 as u64);
                }
            }
            black_box(acc)
        })
    });

    // Step 1 — lookup: every event against every ELT of the layer.
    c.bench_function("steps/loss-lookup", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for trial in inputs.yet.trials() {
                for &e in trial.events {
                    for lookup in prepared.lookups() {
                        acc += lookup.loss(e);
                    }
                }
            }
            black_box(acc)
        })
    });

    // Step 2 — financial terms on a pre-fetched loss stream.
    let losses: Vec<f64> = {
        let table: &DirectAccessTable<f64> = &prepared.lookups()[0];
        inputs
            .yet
            .trials()
            .flat_map(|t| t.events.iter().map(|&e| table.loss(e)).collect::<Vec<_>>())
            .collect()
    };
    let fin = FinancialTerms {
        fx_rate: 1.2,
        retention: 1e5,
        limit: 1e8,
        share: 0.8,
    };
    c.bench_function("steps/financial-terms", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &l in &losses {
                acc += fin.apply(l);
            }
            black_box(acc)
        })
    });

    // Step 3 — occurrence + aggregate layer terms per trial.
    let layer_terms = LayerTerms {
        occ_retention: 1e5,
        occ_limit: 1e7,
        agg_retention: 5e5,
        agg_limit: 5e7,
    };
    let trial_losses: Vec<Vec<f64>> = inputs
        .yet
        .trials()
        .map(|t| {
            t.events
                .iter()
                .map(|&e| prepared.lookups()[0].loss(e))
                .collect()
        })
        .collect();
    c.bench_function("steps/layer-terms", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            let mut buf = Vec::new();
            for losses in &trial_losses {
                buf.clear();
                buf.extend(
                    losses
                        .iter()
                        .map(|&l| xl_clamp(l, layer_terms.occ_retention, layer_terms.occ_limit)),
                );
                acc += apply_aggregate_stepwise(&layer_terms, &mut buf);
            }
            black_box(acc)
        })
    });
}

criterion_group! {
    name = kernel_steps;
    config = Criterion::default().sample_size(20);
    targets = benches
}
criterion_main!(kernel_steps);
