//! # ara-cli — command-line aggregate risk analysis
//!
//! A small operational front-end over the workspace:
//!
//! ```text
//! ara generate --trials 10000 --events 100 --elts 15 --out book.ara
//! ara analyse  --input book.ara --engine multi-gpu --devices 4
//! ara metrics  --input book.ara --layer 0
//! ara model    --engine multi-gpu --devices 4
//! ara perf     gate --small
//! ```
//!
//! The argument parser is deliberately tiny and dependency-free; all the
//! work happens in the library crates. Everything here is testable: the
//! commands take parsed options and return strings.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod args;
pub mod commands;

pub use args::{
    parse_args, ArgError, Command, EngineKind, GenerateOpts, Layout, ObsAction, ObsFormat, ObsOpts,
    PerfAction, PerfFormat, PerfOpts, RunOpts,
};
pub use commands::{
    run_analyse, run_analyse_outcome, run_generate, run_metrics, run_model, run_obs, run_perf,
    run_seasonal, run_stream, trace_level, AnalyseOutcome, CliError, PerfOutcome,
};
// Re-exported so the binary can deduplicate its stderr notices through
// the same once-per-process latch the library layers use.
pub use ara_trace::warn_once;
