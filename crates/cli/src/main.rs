//! The `ara` binary: thin shell over [`ara_cli`].

use ara_cli::{
    parse_args, run_analyse_outcome, run_generate, run_metrics, run_model, run_obs, run_perf,
    run_seasonal, run_stream, warn_once, Command,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let result = match command {
        Command::Help => {
            println!("{}", ara_cli::args::HELP);
            return ExitCode::SUCCESS;
        }
        Command::Generate(opts) => run_generate(&opts),
        Command::Analyse(opts) => {
            return match run_analyse_outcome(&opts) {
                Ok(outcome) => {
                    // The notice explains *why* counters are missing; one
                    // explanation per process is enough even when several
                    // analyses run back to back.
                    if let Some(notice) = &outcome.counters_notice {
                        if warn_once("counters-notice") {
                            eprintln!("{notice}");
                        }
                    }
                    println!("{}", outcome.report);
                    if outcome.check_failed || outcome.verify_failed {
                        ExitCode::FAILURE
                    } else {
                        ExitCode::SUCCESS
                    }
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        Command::Metrics(opts) => run_metrics(&opts),
        Command::Model(opts) => run_model(&opts),
        Command::Stream(opts) => run_stream(&opts),
        Command::Seasonal(opts) => run_seasonal(&opts),
        Command::Obs(opts) => {
            return match run_obs(&opts) {
                Ok(report) => {
                    print!("{report}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        Command::Perf(opts) => {
            return match run_perf(&opts) {
                Ok(outcome) => {
                    print!("{}", outcome.report);
                    if outcome.gate_failed {
                        ExitCode::FAILURE
                    } else {
                        ExitCode::SUCCESS
                    }
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            };
        }
    };
    match result {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
