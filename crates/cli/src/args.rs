//! Minimal `--flag value` argument parsing for the `ara` binary.

use std::fmt;

/// Which engine to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Sequential reference (implementation i).
    Sequential,
    /// Multi-core rayon engine (implementation ii).
    Multicore,
    /// Basic GPU kernel (implementation iii).
    GpuBasic,
    /// Optimised GPU kernel (implementation iv).
    GpuOptimised,
    /// Multi-GPU (implementation v).
    MultiGpu,
}

impl EngineKind {
    /// Parse from the `--engine` value.
    pub fn parse(s: &str) -> Result<Self, ArgError> {
        match s {
            "sequential" | "seq" => Ok(EngineKind::Sequential),
            "multicore" | "cpu" => Ok(EngineKind::Multicore),
            "gpu-basic" => Ok(EngineKind::GpuBasic),
            "gpu-optimised" | "gpu-optimized" | "gpu" => Ok(EngineKind::GpuOptimised),
            "multi-gpu" => Ok(EngineKind::MultiGpu),
            other => Err(ArgError::BadValue("--engine", other.to_string())),
        }
    }

    /// All engine names, for help text.
    pub const NAMES: &'static str =
        "sequential | multicore | gpu-basic | gpu-optimised | multi-gpu";
}

/// Snapshot layout choice for `ara generate`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Layout {
    /// Column-major (`ARA\x01`): whole-table reads.
    #[default]
    Columnar,
    /// Trial-major (`ARA\x02`): streamable out-of-core.
    Interleaved,
}

impl Layout {
    /// Parse from the `--layout` value.
    pub fn parse(s: &str) -> Result<Self, ArgError> {
        match s {
            "columnar" | "column" => Ok(Layout::Columnar),
            "interleaved" | "stream" | "trial-major" => Ok(Layout::Interleaved),
            other => Err(ArgError::BadValue("--layout", other.to_string())),
        }
    }
}

/// Options of `ara generate`.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerateOpts {
    /// Trials in the YET.
    pub trials: usize,
    /// Mean events per trial.
    pub events: f64,
    /// ELTs in the pool (every layer covers all of them).
    pub elts: usize,
    /// Non-zero records per ELT.
    pub records: usize,
    /// Catalogue size.
    pub catalogue: u32,
    /// Number of layers.
    pub layers: usize,
    /// RNG seed.
    pub seed: u64,
    /// Output snapshot path.
    pub out: String,
    /// On-disk layout.
    pub layout: Layout,
}

/// Multicore trial-loop schedule (`--schedule`), mirroring
/// [`ara_engine::Schedule`] without pulling the engine crate into the
/// parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScheduleOpt {
    /// Grain autotuned from the host cache hierarchy (the default).
    #[default]
    Auto,
    /// Fine-grained work stealing (grain 1).
    Dynamic,
    /// One contiguous slab per worker.
    Static,
    /// Work stealing with a fixed minimum grain of `n` trials.
    Chunked(usize),
}

impl ScheduleOpt {
    /// Parse from the `--schedule` value: `auto`, `dynamic`, `static`,
    /// or `chunked:N` (a bare integer is accepted as shorthand for
    /// `chunked:N`).
    pub fn parse(s: &str) -> Result<Self, ArgError> {
        match s {
            "auto" => Ok(ScheduleOpt::Auto),
            "dynamic" => Ok(ScheduleOpt::Dynamic),
            "static" => Ok(ScheduleOpt::Static),
            other => {
                let digits = other.strip_prefix("chunked:").unwrap_or(other);
                match digits.parse::<usize>() {
                    Ok(n) if n > 0 => Ok(ScheduleOpt::Chunked(n)),
                    _ => Err(ArgError::BadValue("--schedule", other.to_string())),
                }
            }
        }
    }
}

/// Options of `ara analyse` / `ara metrics` / `ara model`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOpts {
    /// Input snapshot path (`analyse`/`metrics`).
    pub input: String,
    /// Engine selection.
    pub engine: EngineKind,
    /// Worker threads (multicore) / devices (multi-gpu).
    pub devices: usize,
    /// Multicore trial-loop schedule (`--schedule`, default `auto`).
    pub schedule: ScheduleOpt,
    /// Events staged per thread per pass for the optimised GPU kernel
    /// (`--chunk`); `None` keeps the engine default.
    pub chunk: Option<u32>,
    /// Layer index for `metrics`.
    pub layer: usize,
    /// Seasonal bins for `seasonal`.
    pub bins: usize,
    /// Trace output path (`--trace-out`); tracing is enabled when set.
    pub trace_out: Option<String>,
    /// Trace export format (`--trace-format`, default `chrome`).
    pub trace_format: ara_trace::TraceFormat,
    /// Replay the engine's kernels under simt-check instrumentation
    /// (`--check`, `analyse` only) and append the hazard report.
    pub check: bool,
    /// Statically verify the engine's kernel access patterns over the
    /// full launch space (`--verify`, `analyse` only) and append the
    /// simt-verify report.
    pub verify: bool,
    /// Sample hardware performance counters per Algorithm-1 stage
    /// (`--counters`, `analyse` only) and append the roofline report.
    pub counters: bool,
    /// Suppress the per-layer report body (`--quiet`).
    pub quiet: bool,
    /// Recorder verbosity: 0 → Info, 1 (`-v`) → Debug, 2 (`-vv`) → Trace.
    pub verbosity: u8,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            input: String::new(),
            engine: EngineKind::Sequential,
            devices: 4,
            schedule: ScheduleOpt::Auto,
            chunk: None,
            layer: 0,
            bins: 12,
            trace_out: None,
            trace_format: ara_trace::TraceFormat::Chrome,
            check: false,
            verify: false,
            counters: false,
            quiet: false,
            verbosity: 0,
        }
    }
}

/// What `ara perf` should do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PerfAction {
    /// Run the engine suite and append the results to the history.
    Record,
    /// Compare the two most recent history runs on this host.
    Compare,
    /// Run the suite now and fail on a statistically supported
    /// regression against the latest history baseline.
    Gate,
    /// Render the recorded history trajectory for this host.
    Report,
    /// Longitudinal first-vs-latest drift per benchmark, with the
    /// worst-moving Algorithm-1 stage.
    Trend,
}

impl PerfAction {
    /// Parse the `perf` action token.
    pub fn parse(s: &str) -> Result<Self, ArgError> {
        match s {
            "record" => Ok(PerfAction::Record),
            "compare" => Ok(PerfAction::Compare),
            "gate" => Ok(PerfAction::Gate),
            "report" => Ok(PerfAction::Report),
            "trend" => Ok(PerfAction::Trend),
            other => Err(ArgError::BadValue("perf action", other.to_string())),
        }
    }
}

/// Output format for `ara perf` (`--format`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PerfFormat {
    /// Human-readable text (the default).
    #[default]
    Summary,
    /// Machine-readable JSON.
    Json,
    /// GitHub-flavoured markdown table.
    Markdown,
}

impl PerfFormat {
    /// Parse the `--format` value.
    pub fn parse(s: &str) -> Result<Self, ArgError> {
        match s {
            "summary" | "text" => Ok(PerfFormat::Summary),
            "json" => Ok(PerfFormat::Json),
            "markdown" | "md" => Ok(PerfFormat::Markdown),
            other => Err(ArgError::BadValue("--format", other.to_string())),
        }
    }
}

/// Options of `ara perf`.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfOpts {
    /// Which perf operation to run.
    pub action: PerfAction,
    /// Run the small (CI smoke) preset instead of the bench preset.
    pub small: bool,
    /// Timed repeats per benchmark (`--repeat`, default 5).
    pub repeats: usize,
    /// History file override (`--history`); defaults to
    /// `$ARA_PERF_HISTORY` or `perf/history.jsonl`.
    pub history: Option<String>,
    /// Output format.
    pub format: PerfFormat,
    /// Allowed median regression percentage for `gate` (`--threshold`,
    /// default 25).
    pub threshold_pct: f64,
}

/// What `ara obs` should do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsAction {
    /// Run an analysis and dump the flight recorder as JSONL.
    Dump,
    /// Run an analysis and render the unified metrics registry.
    Report,
}

/// Output format for `ara obs report` (`--format`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ObsFormat {
    /// Human-readable text (the default).
    #[default]
    Text,
    /// Prometheus-style exposition text.
    Prometheus,
    /// JSON snapshot mirroring the exposition.
    Json,
}

impl ObsFormat {
    /// Parse the `--format` value.
    pub fn parse(s: &str) -> Result<Self, ArgError> {
        match s {
            "text" | "summary" => Ok(ObsFormat::Text),
            "prometheus" | "prom" => Ok(ObsFormat::Prometheus),
            "json" => Ok(ObsFormat::Json),
            other => Err(ArgError::BadValue("--format", other.to_string())),
        }
    }
}

/// Options of `ara obs`.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsOpts {
    /// Which obs operation to run.
    pub action: ObsAction,
    /// The analysis run that populates the recorder and registry
    /// (snapshot, engine and tuning flags — the analyse subset).
    pub run: RunOpts,
    /// Flight-dump output path (`--out`, `dump` only; default
    /// `flight-dump.jsonl`).
    pub out: String,
    /// Report format (`--format`, `report` only).
    pub format: ObsFormat,
}

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `ara generate …` — build a synthetic book and snapshot it.
    Generate(GenerateOpts),
    /// `ara analyse …` — run an engine over a snapshot.
    Analyse(RunOpts),
    /// `ara metrics …` — risk metrics of one layer of a snapshot.
    Metrics(RunOpts),
    /// `ara model …` — paper-scale modeled timing of an engine.
    Model(RunOpts),
    /// `ara stream …` — out-of-core analysis of a trial-major snapshot.
    Stream(RunOpts),
    /// `ara seasonal …` — seasonal occurrence/loss attribution.
    Seasonal(RunOpts),
    /// `ara perf …` — record, compare, gate, or report perf history.
    Perf(PerfOpts),
    /// `ara obs …` — flight-recorder dump / metrics exposition.
    Obs(ObsOpts),
    /// `ara help`.
    Help,
}

/// Argument-parsing failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgError {
    /// No subcommand given.
    MissingCommand,
    /// Unknown subcommand.
    UnknownCommand(String),
    /// Unknown flag for the subcommand.
    UnknownFlag(String),
    /// Flag present without a value.
    MissingValue(&'static str),
    /// Value failed to parse.
    BadValue(&'static str, String),
    /// A required flag is absent.
    MissingFlag(&'static str),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "missing subcommand; try `ara help`"),
            ArgError::UnknownCommand(c) => write!(f, "unknown subcommand `{c}`; try `ara help`"),
            ArgError::UnknownFlag(x) => write!(f, "unknown flag `{x}`"),
            ArgError::MissingValue(x) => write!(f, "flag `{x}` needs a value"),
            ArgError::BadValue(x, v) => write!(f, "bad value `{v}` for `{x}`"),
            ArgError::MissingFlag(x) => write!(f, "required flag `{x}` missing"),
        }
    }
}

impl std::error::Error for ArgError {}

/// The help text.
pub const HELP: &str = "\
ara — aggregate risk analysis (Bahl et al., ICPP 2013 reproduction)

USAGE:
  ara generate --out <path> [--trials N] [--events N] [--elts N]
               [--records N] [--catalogue N] [--layers N] [--seed N]
  ara analyse  --input <path> [--engine E] [--devices N]
               [--schedule auto|dynamic|static|chunked:N] [--chunk N]
               [--check] [--verify] [--counters]
               [--trace-out <path> [--trace-format F]]
               [--quiet] [-v|-vv]
  ara metrics  --input <path> [--layer N]
  ara stream   --input <path.stream> [--layer N]
  ara seasonal --input <path> [--layer N] [--bins N]
  ara model    [--engine E] [--devices N]
  ara perf     record|compare|gate|report|trend [--small] [--repeat N]
               [--history <path>] [--format summary|json|markdown]
               [--threshold PCT]
  ara obs      dump|report --input <path> [--engine E] [--devices N]
               [--out <path>] [--format text|prometheus|json]
  ara help

LAYOUTS (generate --layout): columnar (default) | interleaved (streamable)

ENGINES: sequential | multicore | gpu-basic | gpu-optimised | multi-gpu

TUNING: --schedule picks the multicore trial-loop grain (auto, the
  default, sizes it from the host cache hierarchy); --chunk overrides
  the optimised GPU kernel's events-staged-per-thread.

CHECKING: analyse --check replays the engine's SIMT kernels under
  simt-check instrumentation after the normal run: shared-memory
  write/write and read/write hazards, barrier (phase) divergence,
  out-of-bounds and uninitialized reads, and per-warp lane-utilisation
  are reported, with a non-zero exit status when any hazard is found.

VERIFYING: analyse --verify statically proves (or refutes) the same
  properties for *every* launch geometry at once: the engine's kernels
  are described as affine per-thread index maps and simt-verify checks
  cross-thread disjointness, bounds and barrier balance symbolically,
  reporting per-stage verdicts (proven-safe | needs-dynamic-check |
  proven-hazard) plus static bank-conflict and coalescing estimates.
  Exit status is non-zero when a hazard is proven.

COUNTERS: analyse --counters samples hardware performance counters
  (cycles, instructions, LLC misses, dTLB misses, branch misses,
  stalled backend cycles) per Algorithm-1 stage via perf_event_open and
  appends a roofline report: per-stage IPC, LLC-miss/lookup, estimated
  DRAM GB/s, and a compute/latency/bandwidth bottleneck classification,
  plus a modeled-vs-measured memory-traffic drift table. On hosts where
  counters are unavailable (permissions, no PMU) a one-line notice goes
  to stderr and the analysis output is unchanged. ARA_COUNTERS=off
  forces counters off.

TRACING: --trace-out enables the recorder and writes the drained trace;
  --trace-format chrome (default, for chrome://tracing / Perfetto) |
  jsonl | summary. -v keeps Debug spans, -vv keeps Trace spans.
  --quiet suppresses the per-layer report body.

PERF: `record` runs the five-engine suite and appends every repeat
  sample (plus a provenance manifest) to the history; `gate` reruns the
  suite and fails only when a bootstrap CI on the medians excludes the
  allowed regression (--threshold, default 25%) beyond the noise floor,
  naming the worst-moving stage; `compare` diffs the last two recorded
  runs; `report` renders the host's trajectory; `trend` summarises the
  first-vs-latest drift per benchmark across the whole history, naming
  the Algorithm-1 stage whose share moved the most. Baselines are keyed
  by host fingerprint. --history overrides perf/history.jsonl.

OBS: the flight recorder is an always-on, bounded in-process ring of
  recent spans, autotune metadata and anomaly markers (ARA_FLIGHT=off
  disables; ARA_FLIGHT_CAP sizes it). `obs dump` runs an analysis and
  writes the ring as JSONL; `obs report` runs an analysis and renders
  the unified metrics registry (counters/gauges/histograms with engine
  labels) as text, Prometheus exposition, or JSON. Per-stage latency
  baselines flag anomalous stages mid-run and auto-dump the ring
  (ARA_ANOMALY=off disables; ARA_FLIGHT_DUMP overrides the dump path).
";

/// Flags that take no value.
const BOOL_FLAGS: &[&str] = &[
    "--check",
    "--verify",
    "--counters",
    "--quiet",
    "-v",
    "-vv",
    "--small",
];

struct Flags<'a> {
    pairs: Vec<(&'a str, &'a str)>,
}

impl<'a> Flags<'a> {
    fn parse(args: &'a [String]) -> Result<Self, ArgError> {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            if BOOL_FLAGS.contains(&flag) {
                pairs.push((flag, ""));
                i += 1;
                continue;
            }
            if !flag.starts_with("--") {
                return Err(ArgError::UnknownFlag(flag.to_string()));
            }
            let value = args.get(i + 1).ok_or(ArgError::MissingValue("flag"))?;
            pairs.push((flag, value.as_str()));
            i += 2;
        }
        Ok(Flags { pairs })
    }

    fn get(&self, name: &'static str) -> Option<&str> {
        self.pairs.iter().find(|(f, _)| *f == name).map(|(_, v)| *v)
    }

    fn has(&self, name: &'static str) -> bool {
        self.pairs.iter().any(|(f, _)| *f == name)
    }

    fn num<T: std::str::FromStr>(&self, name: &'static str, default: T) -> Result<T, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError::BadValue(name, v.to_string())),
        }
    }

    fn ensure_known(&self, known: &[&str]) -> Result<(), ArgError> {
        for (f, _) in &self.pairs {
            if !known.contains(f) {
                return Err(ArgError::UnknownFlag(f.to_string()));
            }
        }
        Ok(())
    }
}

/// Parse a full argument vector (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, ArgError> {
    let Some(cmd) = args.first() else {
        return Err(ArgError::MissingCommand);
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "generate" => {
            let flags = Flags::parse(rest)?;
            flags.ensure_known(&[
                "--trials",
                "--events",
                "--elts",
                "--records",
                "--catalogue",
                "--layers",
                "--seed",
                "--out",
                "--layout",
            ])?;
            let out = flags
                .get("--out")
                .ok_or(ArgError::MissingFlag("--out"))?
                .to_string();
            Ok(Command::Generate(GenerateOpts {
                trials: flags.num("--trials", 10_000)?,
                events: flags.num("--events", 100.0)?,
                elts: flags.num("--elts", 15)?,
                records: flags.num("--records", 2_000)?,
                catalogue: flags.num("--catalogue", 200_000)?,
                layers: flags.num("--layers", 1)?,
                seed: flags.num("--seed", 42)?,
                out,
                layout: match flags.get("--layout") {
                    None => Layout::Columnar,
                    Some(v) => Layout::parse(v)?,
                },
            }))
        }
        "analyse" | "analyze" | "metrics" | "model" | "stream" | "seasonal" => {
            let flags = Flags::parse(rest)?;
            flags.ensure_known(&[
                "--input",
                "--engine",
                "--devices",
                "--schedule",
                "--chunk",
                "--layer",
                "--bins",
                "--trace-out",
                "--trace-format",
                "--check",
                "--verify",
                "--counters",
                "--quiet",
                "-v",
                "-vv",
            ])?;
            let mut opts = RunOpts::default();
            if let Some(i) = flags.get("--input") {
                opts.input = i.to_string();
            }
            if let Some(e) = flags.get("--engine") {
                opts.engine = EngineKind::parse(e)?;
            }
            opts.devices = flags.num("--devices", opts.devices)?;
            if let Some(s) = flags.get("--schedule") {
                opts.schedule = ScheduleOpt::parse(s)?;
            }
            if flags.has("--chunk") {
                opts.chunk = Some(flags.num("--chunk", 0u32)?);
                if opts.chunk == Some(0) {
                    return Err(ArgError::BadValue("--chunk", "0".to_string()));
                }
            }
            opts.layer = flags.num("--layer", opts.layer)?;
            opts.bins = flags.num("--bins", opts.bins)?;
            opts.trace_out = flags.get("--trace-out").map(str::to_string);
            if let Some(fmt) = flags.get("--trace-format") {
                opts.trace_format = ara_trace::TraceFormat::parse(fmt)
                    .ok_or_else(|| ArgError::BadValue("--trace-format", fmt.to_string()))?;
            }
            opts.check = flags.has("--check");
            opts.verify = flags.has("--verify");
            opts.counters = flags.has("--counters");
            opts.quiet = flags.has("--quiet");
            opts.verbosity = if flags.has("-vv") {
                2
            } else if flags.has("-v") {
                1
            } else {
                0
            };
            if cmd != "model" && opts.input.is_empty() {
                return Err(ArgError::MissingFlag("--input"));
            }
            Ok(match cmd.as_str() {
                "analyse" | "analyze" => Command::Analyse(opts),
                "metrics" => Command::Metrics(opts),
                "stream" => Command::Stream(opts),
                "seasonal" => Command::Seasonal(opts),
                _ => Command::Model(opts),
            })
        }
        "obs" => {
            let Some(action) = rest.first() else {
                return Err(ArgError::MissingFlag("dump|report"));
            };
            let action = match action.as_str() {
                "dump" => ObsAction::Dump,
                "report" => ObsAction::Report,
                other => return Err(ArgError::BadValue("obs action", other.to_string())),
            };
            let flags = Flags::parse(&rest[1..])?;
            flags.ensure_known(&[
                "--input",
                "--engine",
                "--devices",
                "--schedule",
                "--chunk",
                "--out",
                "--format",
            ])?;
            let mut run = RunOpts::default();
            run.input = flags
                .get("--input")
                .ok_or(ArgError::MissingFlag("--input"))?
                .to_string();
            if let Some(e) = flags.get("--engine") {
                run.engine = EngineKind::parse(e)?;
            }
            run.devices = flags.num("--devices", run.devices)?;
            if let Some(s) = flags.get("--schedule") {
                run.schedule = ScheduleOpt::parse(s)?;
            }
            if flags.has("--chunk") {
                run.chunk = Some(flags.num("--chunk", 0u32)?);
                if run.chunk == Some(0) {
                    return Err(ArgError::BadValue("--chunk", "0".to_string()));
                }
            }
            Ok(Command::Obs(ObsOpts {
                action,
                run,
                out: flags
                    .get("--out")
                    .unwrap_or("flight-dump.jsonl")
                    .to_string(),
                format: match flags.get("--format") {
                    None => ObsFormat::Text,
                    Some(v) => ObsFormat::parse(v)?,
                },
            }))
        }
        "perf" => {
            let Some(action) = rest.first() else {
                return Err(ArgError::MissingFlag("record|compare|gate|report|trend"));
            };
            let action = PerfAction::parse(action)?;
            let flags = Flags::parse(&rest[1..])?;
            flags.ensure_known(&[
                "--small",
                "--repeat",
                "--history",
                "--format",
                "--threshold",
            ])?;
            let threshold_pct: f64 = flags.num("--threshold", 25.0)?;
            if !(threshold_pct.is_finite() && threshold_pct >= 0.0) {
                return Err(ArgError::BadValue("--threshold", threshold_pct.to_string()));
            }
            Ok(Command::Perf(PerfOpts {
                action,
                small: flags.has("--small"),
                repeats: flags.num("--repeat", 5usize)?.max(1),
                history: flags.get("--history").map(str::to_string),
                format: match flags.get("--format") {
                    None => PerfFormat::Summary,
                    Some(v) => PerfFormat::parse(v)?,
                },
                threshold_pct,
            }))
        }
        other => Err(ArgError::UnknownCommand(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_generate_with_defaults() {
        let cmd = parse_args(&v(&["generate", "--out", "x.ara"])).unwrap();
        match cmd {
            Command::Generate(g) => {
                assert_eq!(g.out, "x.ara");
                assert_eq!(g.trials, 10_000);
                assert_eq!(g.elts, 15);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_generate_overrides() {
        let cmd = parse_args(&v(&[
            "generate", "--out", "x", "--trials", "500", "--events", "25.5", "--seed", "7",
        ]))
        .unwrap();
        match cmd {
            Command::Generate(g) => {
                assert_eq!(g.trials, 500);
                assert_eq!(g.events, 25.5);
                assert_eq!(g.seed, 7);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn generate_requires_out() {
        assert_eq!(
            parse_args(&v(&["generate"])).unwrap_err(),
            ArgError::MissingFlag("--out")
        );
    }

    #[test]
    fn parse_analyse() {
        let cmd = parse_args(&v(&[
            "analyse",
            "--input",
            "b.ara",
            "--engine",
            "multi-gpu",
            "--devices",
            "2",
        ]))
        .unwrap();
        match cmd {
            Command::Analyse(o) => {
                assert_eq!(o.engine, EngineKind::MultiGpu);
                assert_eq!(o.devices, 2);
                assert_eq!(o.input, "b.ara");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn analyse_requires_input() {
        assert!(matches!(
            parse_args(&v(&["analyse", "--engine", "seq"])),
            Err(ArgError::MissingFlag("--input"))
        ));
    }

    #[test]
    fn model_needs_no_input() {
        let cmd = parse_args(&v(&["model", "--engine", "gpu"])).unwrap();
        assert!(matches!(
            cmd,
            Command::Model(RunOpts {
                engine: EngineKind::GpuOptimised,
                ..
            })
        ));
    }

    #[test]
    fn engine_aliases() {
        assert_eq!(EngineKind::parse("seq").unwrap(), EngineKind::Sequential);
        assert_eq!(EngineKind::parse("cpu").unwrap(), EngineKind::Multicore);
        assert_eq!(
            EngineKind::parse("gpu-optimized").unwrap(),
            EngineKind::GpuOptimised
        );
        assert!(EngineKind::parse("tpu").is_err());
    }

    #[test]
    fn errors_are_reported() {
        assert_eq!(parse_args(&[]).unwrap_err(), ArgError::MissingCommand);
        assert!(matches!(
            parse_args(&v(&["frobnicate"])),
            Err(ArgError::UnknownCommand(_))
        ));
        assert!(matches!(
            parse_args(&v(&["analyse", "--input", "x", "--wat", "1"])),
            Err(ArgError::UnknownFlag(_))
        ));
        assert!(matches!(
            parse_args(&v(&["analyse", "--input"])),
            Err(ArgError::MissingValue(_))
        ));
        assert!(matches!(
            parse_args(&v(&["analyse", "--input", "x", "--devices", "two"])),
            Err(ArgError::BadValue("--devices", _))
        ));
    }

    #[test]
    fn parse_tuning_flags() {
        let cmd = parse_args(&v(&[
            "analyse",
            "--input",
            "b.ara",
            "--engine",
            "cpu",
            "--schedule",
            "chunked:64",
            "--chunk",
            "50",
        ]))
        .unwrap();
        match cmd {
            Command::Analyse(o) => {
                assert_eq!(o.schedule, ScheduleOpt::Chunked(64));
                assert_eq!(o.chunk, Some(50));
            }
            other => panic!("{other:?}"),
        }
        // Defaults: autotuned schedule, engine-default chunk.
        match parse_args(&v(&["analyse", "--input", "b.ara"])).unwrap() {
            Command::Analyse(o) => {
                assert_eq!(o.schedule, ScheduleOpt::Auto);
                assert_eq!(o.chunk, None);
            }
            other => panic!("{other:?}"),
        }
        for s in ["auto", "dynamic", "static", "128"] {
            assert!(ScheduleOpt::parse(s).is_ok(), "{s}");
        }
        assert!(ScheduleOpt::parse("chunked:0").is_err());
        assert!(ScheduleOpt::parse("guided").is_err());
        assert!(matches!(
            parse_args(&v(&["analyse", "--input", "b", "--chunk", "0"])),
            Err(ArgError::BadValue("--chunk", _))
        ));
    }

    #[test]
    fn help_variants() {
        for h in ["help", "--help", "-h"] {
            assert_eq!(parse_args(&v(&[h])).unwrap(), Command::Help);
        }
    }

    #[test]
    fn parse_trace_flags() {
        let cmd = parse_args(&v(&[
            "analyse",
            "--input",
            "b.ara",
            "--trace-out",
            "run.json",
            "--quiet",
            "-vv",
        ]))
        .unwrap();
        match cmd {
            Command::Analyse(o) => {
                assert_eq!(o.trace_out.as_deref(), Some("run.json"));
                // Chrome is the default format.
                assert_eq!(o.trace_format, ara_trace::TraceFormat::Chrome);
                assert!(o.quiet);
                assert_eq!(o.verbosity, 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_trace_format_values() {
        for (token, want) in [
            ("chrome", ara_trace::TraceFormat::Chrome),
            ("jsonl", ara_trace::TraceFormat::Jsonl),
            ("summary", ara_trace::TraceFormat::Summary),
        ] {
            let cmd = parse_args(&v(&[
                "analyse",
                "--input",
                "b.ara",
                "--trace-out",
                "t",
                "--trace-format",
                token,
            ]))
            .unwrap();
            match cmd {
                Command::Analyse(o) => assert_eq!(o.trace_format, want),
                other => panic!("{other:?}"),
            }
        }
        assert!(matches!(
            parse_args(&v(&["analyse", "--input", "b", "--trace-format", "xml"])),
            Err(ArgError::BadValue("--trace-format", _))
        ));
    }

    #[test]
    fn parse_check_flag() {
        let cmd = parse_args(&v(&[
            "analyse", "--input", "b.ara", "--engine", "gpu", "--check",
        ]))
        .unwrap();
        match cmd {
            Command::Analyse(o) => {
                assert!(o.check);
                assert_eq!(o.engine, EngineKind::GpuOptimised);
            }
            other => panic!("{other:?}"),
        }
        // Off by default.
        match parse_args(&v(&["analyse", "--input", "b.ara"])).unwrap() {
            Command::Analyse(o) => assert!(!o.check),
            other => panic!("{other:?}"),
        }
        // A bool flag: takes no value.
        assert!(matches!(
            parse_args(&v(&["generate", "--out", "x", "--check"])),
            Err(ArgError::UnknownFlag(_))
        ));
    }

    #[test]
    fn parse_verify_flag() {
        let cmd = parse_args(&v(&[
            "analyse",
            "--input",
            "b.ara",
            "--engine",
            "multi-gpu",
            "--verify",
        ]))
        .unwrap();
        match cmd {
            Command::Analyse(o) => {
                assert!(o.verify);
                assert!(!o.check);
                assert_eq!(o.engine, EngineKind::MultiGpu);
            }
            other => panic!("{other:?}"),
        }
        // Off by default, and rejected outside the analyse family.
        match parse_args(&v(&["analyse", "--input", "b.ara"])).unwrap() {
            Command::Analyse(o) => assert!(!o.verify),
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse_args(&v(&["generate", "--out", "x", "--verify"])),
            Err(ArgError::UnknownFlag(_))
        ));
    }

    #[test]
    fn parse_counters_flag() {
        let cmd = parse_args(&v(&["analyse", "--input", "b.ara", "--counters"])).unwrap();
        match cmd {
            Command::Analyse(o) => assert!(o.counters),
            other => panic!("{other:?}"),
        }
        // Off by default.
        match parse_args(&v(&["analyse", "--input", "b.ara"])).unwrap() {
            Command::Analyse(o) => assert!(!o.counters),
            other => panic!("{other:?}"),
        }
        // A bool flag scoped to the analyse family.
        assert!(matches!(
            parse_args(&v(&["generate", "--out", "x", "--counters"])),
            Err(ArgError::UnknownFlag(_))
        ));
    }

    #[test]
    fn single_v_maps_to_debug_verbosity() {
        let cmd = parse_args(&v(&["analyse", "--input", "b.ara", "-v"])).unwrap();
        match cmd {
            Command::Analyse(o) => {
                assert_eq!(o.verbosity, 1);
                assert!(!o.quiet);
                assert!(o.trace_out.is_none());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_perf_subcommands() {
        let cmd = parse_args(&v(&["perf", "gate", "--small", "--repeat", "7"])).unwrap();
        match cmd {
            Command::Perf(p) => {
                assert_eq!(p.action, PerfAction::Gate);
                assert!(p.small);
                assert_eq!(p.repeats, 7);
                assert_eq!(p.format, PerfFormat::Summary);
                assert_eq!(p.threshold_pct, 25.0);
                assert!(p.history.is_none());
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse_args(&v(&[
            "perf",
            "report",
            "--history",
            "h.jsonl",
            "--format",
            "markdown",
        ]))
        .unwrap();
        match cmd {
            Command::Perf(p) => {
                assert_eq!(p.action, PerfAction::Report);
                assert_eq!(p.history.as_deref(), Some("h.jsonl"));
                assert_eq!(p.format, PerfFormat::Markdown);
                assert!(!p.small);
            }
            other => panic!("{other:?}"),
        }
        for (token, want) in [
            ("record", PerfAction::Record),
            ("compare", PerfAction::Compare),
        ] {
            match parse_args(&v(&["perf", token])).unwrap() {
                Command::Perf(p) => assert_eq!(p.action, want),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn perf_rejects_bad_input() {
        assert!(matches!(
            parse_args(&v(&["perf"])),
            Err(ArgError::MissingFlag(_))
        ));
        assert!(matches!(
            parse_args(&v(&["perf", "tune"])),
            Err(ArgError::BadValue("perf action", _))
        ));
        assert!(matches!(
            parse_args(&v(&["perf", "gate", "--format", "xml"])),
            Err(ArgError::BadValue("--format", _))
        ));
        assert!(matches!(
            parse_args(&v(&["perf", "gate", "--threshold", "-3"])),
            Err(ArgError::BadValue("--threshold", _))
        ));
        assert!(matches!(
            parse_args(&v(&["perf", "gate", "--engine", "seq"])),
            Err(ArgError::UnknownFlag(_))
        ));
        // Repeats clamp to at least one timed run.
        match parse_args(&v(&["perf", "record", "--repeat", "0"])).unwrap() {
            Command::Perf(p) => assert_eq!(p.repeats, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_perf_trend() {
        match parse_args(&v(&["perf", "trend", "--history", "h.jsonl"])).unwrap() {
            Command::Perf(p) => {
                assert_eq!(p.action, PerfAction::Trend);
                assert_eq!(p.history.as_deref(), Some("h.jsonl"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_obs_subcommands() {
        match parse_args(&v(&[
            "obs",
            "report",
            "--input",
            "b.ara",
            "--format",
            "prometheus",
        ]))
        .unwrap()
        {
            Command::Obs(o) => {
                assert_eq!(o.action, ObsAction::Report);
                assert_eq!(o.format, ObsFormat::Prometheus);
                assert_eq!(o.run.input, "b.ara");
                assert_eq!(o.run.engine, EngineKind::Sequential);
            }
            other => panic!("{other:?}"),
        }
        match parse_args(&v(&[
            "obs", "dump", "--input", "b.ara", "--engine", "gpu", "--out", "f.jsonl",
        ]))
        .unwrap()
        {
            Command::Obs(o) => {
                assert_eq!(o.action, ObsAction::Dump);
                assert_eq!(o.out, "f.jsonl");
                assert_eq!(o.run.engine, EngineKind::GpuOptimised);
                // Text is the default report format even for dump opts.
                assert_eq!(o.format, ObsFormat::Text);
            }
            other => panic!("{other:?}"),
        }
        // Dump default output path.
        match parse_args(&v(&["obs", "dump", "--input", "b.ara"])).unwrap() {
            Command::Obs(o) => assert_eq!(o.out, "flight-dump.jsonl"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn obs_rejects_bad_input() {
        assert!(matches!(
            parse_args(&v(&["obs"])),
            Err(ArgError::MissingFlag("dump|report"))
        ));
        assert!(matches!(
            parse_args(&v(&["obs", "scrape"])),
            Err(ArgError::BadValue("obs action", _))
        ));
        assert!(matches!(
            parse_args(&v(&["obs", "report"])),
            Err(ArgError::MissingFlag("--input"))
        ));
        assert!(matches!(
            parse_args(&v(&["obs", "report", "--input", "b", "--format", "xml"])),
            Err(ArgError::BadValue("--format", _))
        ));
        assert!(matches!(
            parse_args(&v(&["obs", "report", "--input", "b", "--check"])),
            Err(ArgError::UnknownFlag(_))
        ));
    }

    #[test]
    fn generate_rejects_trace_flags() {
        assert!(matches!(
            parse_args(&v(&["generate", "--out", "x", "--quiet"])),
            Err(ArgError::UnknownFlag(_))
        ));
    }
}
