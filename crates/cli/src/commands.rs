//! The `ara` subcommand implementations.
//!
//! Each command returns its report as a `String` so the binary stays a
//! thin printing shell and the behaviour is unit-testable.

use crate::args::{
    EngineKind, GenerateOpts, Layout, ObsAction, ObsFormat, ObsOpts, PerfAction, PerfFormat,
    PerfOpts, RunOpts,
};
use ara_bench::perf::{
    any_regression, compare_runs, group_runs, render, run_suite, BaselineStore, GatePolicy, Preset,
    RunRecord,
};
use ara_core::io::SnapshotError;
use ara_core::Inputs;
use ara_engine::{
    Engine, GpuBasicEngine, GpuOptimizedEngine, MultiGpuEngine, MulticoreEngine, SequentialEngine,
};
use ara_metrics::{EpCurve, RiskSummary};
use ara_workload::{Scenario, ScenarioShape};
use std::fmt;

/// Failures of a CLI command.
#[derive(Debug)]
pub enum CliError {
    /// Workload generation / validation failure.
    Ara(ara_core::AraError),
    /// Snapshot read/write failure.
    Snapshot(SnapshotError),
    /// Filesystem failure.
    Io(std::io::Error),
    /// Semantically invalid request (e.g. layer index out of range).
    Invalid(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Ara(e) => write!(f, "{e}"),
            CliError::Snapshot(e) => write!(f, "{e}"),
            CliError::Io(e) => write!(f, "{e}"),
            CliError::Invalid(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ara_core::AraError> for CliError {
    fn from(e: ara_core::AraError) -> Self {
        CliError::Ara(e)
    }
}
impl From<SnapshotError> for CliError {
    fn from(e: SnapshotError) -> Self {
        CliError::Snapshot(e)
    }
}
impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

/// Build the engine an option set asks for.
pub fn build_engine(opts: &RunOpts) -> Box<dyn Engine> {
    match opts.engine {
        EngineKind::Sequential => Box::new(SequentialEngine::<f64>::new()),
        EngineKind::Multicore => {
            let schedule = match opts.schedule {
                crate::args::ScheduleOpt::Auto => ara_engine::Schedule::Auto,
                crate::args::ScheduleOpt::Dynamic => ara_engine::Schedule::Dynamic,
                crate::args::ScheduleOpt::Static => ara_engine::Schedule::Static,
                crate::args::ScheduleOpt::Chunked(n) => ara_engine::Schedule::Chunked(n),
            };
            Box::new(MulticoreEngine::<f64>::new(opts.devices.max(1)).with_schedule(schedule))
        }
        EngineKind::GpuBasic => Box::new(GpuBasicEngine::new()),
        EngineKind::GpuOptimised => {
            let mut engine = GpuOptimizedEngine::<f32>::new();
            if let Some(chunk) = opts.chunk {
                engine = engine.with_chunk(chunk);
            }
            Box::new(engine)
        }
        EngineKind::MultiGpu => Box::new(MultiGpuEngine::<f32>::new(opts.devices.max(1))),
    }
}

/// `ara generate`: build a synthetic book and write the snapshot.
pub fn run_generate(opts: &GenerateOpts) -> Result<String, CliError> {
    let shape = ScenarioShape {
        num_trials: opts.trials,
        events_per_trial: opts.events,
        catalogue_size: opts.catalogue,
        num_elts: opts.elts,
        records_per_elt: opts.records,
        num_layers: opts.layers,
        elts_per_layer: (opts.elts.min(3), opts.elts),
    };
    let inputs = Scenario::new(shape, opts.seed).build()?;
    let mut file = std::io::BufWriter::new(std::fs::File::create(&opts.out)?);
    match opts.layout {
        Layout::Columnar => ara_core::io::write_inputs(&mut file, &inputs)?,
        Layout::Interleaved => ara_core::io::write_inputs_interleaved(&mut file, &inputs)?,
    }
    use std::io::Write;
    file.flush()?;
    Ok(format!(
        "wrote {}: {} trials x ~{:.0} events, {} ELTs, {} layers ({} lookups per full analysis)",
        opts.out,
        inputs.yet.num_trials(),
        inputs.yet.mean_events_per_trial(),
        inputs.elts.len(),
        inputs.layers.len(),
        inputs.total_lookups(),
    ))
}

fn load(path: &str) -> Result<Inputs, CliError> {
    let mut file = std::io::BufReader::new(std::fs::File::open(path)?);
    Ok(ara_core::io::read_inputs(&mut file)?)
}

/// The recorder level implied by the CLI verbosity flags: the default
/// keeps Info spans, `-v` adds Debug (per-block) spans, `-vv` keeps
/// everything.
pub fn trace_level(verbosity: u8) -> ara_trace::Level {
    match verbosity {
        0 => ara_trace::Level::Info,
        1 => ara_trace::Level::Debug,
        _ => ara_trace::Level::Trace,
    }
}

/// The outcome of `ara analyse`: the rendered report plus whether a
/// `--check` replay found hazards (drives the process exit code).
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyseOutcome {
    /// Rendered report.
    pub report: String,
    /// True when `--check` was requested and the replay was not clean.
    pub check_failed: bool,
    /// True when `--verify` was requested and the static verifier
    /// proved a hazard (a concrete counterexample geometry exists).
    pub verify_failed: bool,
    /// The one-line notice when `--counters` was requested but the host
    /// can't sample (permissions, no PMU, `ARA_COUNTERS=off`). Printed
    /// to stderr by the binary so stdout stays byte-identical to a run
    /// without the flag.
    pub counters_notice: Option<String>,
}

/// `ara analyse`: run the selected engine over a snapshot (report only;
/// see [`run_analyse_outcome`] for the `--check` verdict).
pub fn run_analyse(opts: &RunOpts) -> Result<String, CliError> {
    Ok(run_analyse_outcome(opts)?.report)
}

/// `ara analyse`: run the selected engine over a snapshot. With
/// `--check` the engine's kernels are replayed under simt-check
/// instrumentation (bit-identical results, plus a hazard report).
pub fn run_analyse_outcome(opts: &RunOpts) -> Result<AnalyseOutcome, CliError> {
    let inputs = load(&opts.input)?;
    let engine = build_engine(opts);
    let tracing = opts.trace_out.is_some() || opts.verbosity > 0;
    // Counters ride the traced path: when sampling actually comes up,
    // the recorder is enabled too (stage attribution needs the same
    // bracketing). When it can't — permissions, no PMU, ARA_COUNTERS=off
    // — the run proceeds exactly as if --counters was absent, with one
    // notice for stderr.
    let counters_live = opts.counters && ara_trace::counters::enable();
    let counters_notice = if opts.counters && !counters_live {
        Some(format!(
            "counters unavailable: {}",
            ara_trace::counters::unavailable_reason()
                .unwrap_or_else(|| "hardware counters not supported on this host".to_string()),
        ))
    } else {
        None
    };
    if tracing || counters_live {
        ara_trace::recorder().enable(trace_level(opts.verbosity));
    }
    // The checked replay produces the same portfolio bit-for-bit, so
    // with --check it *is* the analysis run (no second pass).
    let result = if opts.check {
        engine
            .analyse_checked(&inputs)
            .map(|(out, check)| (out, Some(check)))
    } else {
        engine.analyse(&inputs).map(|out| (out, None))
    };
    if counters_live {
        ara_trace::counters::disable();
    }
    let trace = if tracing || counters_live {
        let t = ara_trace::recorder().drain();
        ara_trace::recorder().disable();
        // Counters-only runs drain purely to reset recorder state; the
        // trace itself is rendered only when tracing was asked for.
        tracing.then_some(t)
    } else {
        None
    };
    let (out, check) = result?;
    let mut report = format!(
        "{}: analysed {} trials x {} layers in {:.1} ms ({:.1} ms preprocessing)\n",
        engine.name(),
        inputs.yet.num_trials(),
        inputs.layers.len(),
        out.wall.as_secs_f64() * 1e3,
        out.prepare.as_secs_f64() * 1e3,
    );
    if !opts.quiet {
        for (i, id) in out.portfolio.layer_ids().iter().enumerate() {
            let ylt = out.portfolio.layer_ylt(i);
            report.push_str(&format!(
                "  layer {:>3}: AAL {:>16.2}  max year loss {:>16.2}  P(attach) {:.3}\n",
                id.0,
                ylt.mean(),
                ylt.max(),
                ylt.attachment_probability(),
            ));
        }
        if let Some(m) = &out.measured {
            let (fetch, lookup, financial, layer) = m.percentages();
            report.push_str(&format!(
                "  measured: fetch {fetch:.1}% | lookup {lookup:.1}% | financial {financial:.1}% | layer terms {layer:.1}%\n",
            ));
        }
    }
    // The roofline section: per-stage counter rates with a bottleneck
    // classification, plus the modeled-vs-measured memory-traffic drift.
    if let (Some(counters), Some(measured)) = (&out.counters, &out.measured) {
        if !counters.is_empty() {
            let report_table = ara_engine::CounterReport::build(
                counters,
                measured,
                inputs.total_lookups(),
                ara_engine::working_set_bytes(&inputs, 8),
                simt_sim::model::autotune::CacheModel::detect().llc_bytes as u64,
            );
            report.push_str("hardware counters (per Algorithm-1 stage):\n");
            report.push_str(&report_table.render());
            if let Some(drift) = ara_engine::memory_drift(counters, &inputs, 25.0) {
                report.push_str("memory traffic, modeled vs measured DRAM shares:\n");
                report.push_str(&drift.render());
            }
        }
    }
    if let Some(trace) = &trace {
        match &opts.trace_out {
            Some(path) => {
                std::fs::write(path, opts.trace_format.render(trace))?;
                report.push_str(&format!(
                    "trace: {} spans written to {} ({})\n",
                    trace.spans.len(),
                    path,
                    opts.trace_format.name(),
                ));
            }
            // `-v`/`-vv` without an output file: append the human
            // summary to the report.
            None => report.push_str(&ara_trace::to_summary(trace)),
        }
    }
    let check_failed = match &check {
        Some(c) => {
            report.push_str(&c.render());
            !c.is_clean()
        }
        None => false,
    };
    // Static verification is input-independent; it appends the symbolic
    // verdict for every launch geometry after the dynamic sections.
    let verify_failed = if opts.verify {
        let summary = engine.verify();
        report.push_str(&summary.render());
        summary.proven_hazard()
    } else {
        false
    };
    Ok(AnalyseOutcome {
        report,
        check_failed,
        verify_failed,
        counters_notice,
    })
}

/// `ara metrics`: the risk metrics of one layer.
pub fn run_metrics(opts: &RunOpts) -> Result<String, CliError> {
    let inputs = load(&opts.input)?;
    let engine = SequentialEngine::<f64>::new();
    let out = engine.analyse(&inputs)?;
    if opts.layer >= out.portfolio.num_layers() {
        return Err(CliError::Invalid(format!(
            "layer {} out of range (portfolio has {})",
            opts.layer,
            out.portfolio.num_layers()
        )));
    }
    let ylt = out.portfolio.layer_ylt(opts.layer);
    let s = RiskSummary::from_ylt(ylt).ok_or_else(|| CliError::Invalid("empty YLT".to_string()))?;
    let mut report = format!(
        "layer {} over {} trials:\n  AAL      {:>16.2}\n  stddev   {:>16.2}\n  VaR99    {:>16.2}\n  TVaR99   {:>16.2}\n  PML250   {:>16.2}\n  P(attach) {:>15.3}\n",
        opts.layer,
        ylt.num_trials(),
        s.aal,
        s.stddev,
        s.var_99,
        s.tvar_99,
        s.pml_250,
        s.attachment_probability,
    );
    if let Some(curve) = EpCurve::aep(ylt) {
        report.push_str("  AEP curve:\n");
        for p in curve.points_at(&[10.0, 25.0, 50.0, 100.0, 250.0]) {
            report.push_str(&format!(
                "    {:>6.0}-yr loss {:>16.2}\n",
                p.return_period(),
                p.loss
            ));
        }
    }
    Ok(report)
}

/// `ara model`: the paper-scale modeled timing of an engine.
pub fn run_model(opts: &RunOpts) -> Result<String, CliError> {
    let engine = build_engine(opts);
    let m = engine.model(&simt_sim::model::cpu::AraShape::paper());
    let (fetch, lookup, financial, layer) = m.breakdown.percentages();
    Ok(format!(
        "{} on {}: {:.2} s modeled at paper scale (1M trials x 1000 events, 15 ELTs)\n  fetch {:.1}% | lookup {:.1}% | financial {:.1}% | layer terms {:.1}%\n",
        engine.name(),
        m.platform,
        m.total_seconds,
        fetch,
        lookup,
        financial,
        layer,
    ))
}

/// `ara stream`: out-of-core analysis of a trial-major snapshot. The
/// YET is never materialised — trials stream from disk one at a time
/// through the sequential reference kernel.
pub fn run_stream(opts: &RunOpts) -> Result<String, CliError> {
    use ara_core::io::YetStreamReader;
    use ara_core::PreparedLayer;

    // Pass 1: skim the stream to reach the trailing ELT/layer sections
    // (their size is negligible next to the YET).
    let file = std::io::BufReader::new(std::fs::File::open(&opts.input)?);
    let mut reader = YetStreamReader::open(file)?;
    let catalogue = reader.catalogue_size();
    let num_trials = reader.num_trials();
    while reader.next_trial()?.is_some() {}
    let (elts, layers) = reader.finish_inputs()?;
    let layer = layers
        .get(opts.layer)
        .ok_or_else(|| CliError::Invalid(format!("layer {} out of range", opts.layer)))?;

    // Preprocess the dense tables, then pass 2: stream the analysis.
    let lookups: Result<Vec<_>, _> = layer
        .elt_indices
        .iter()
        .map(|&i| ara_core::DirectAccessTable::<f64>::from_elt(&elts[i], catalogue))
        .collect();
    let fin = layer
        .elt_indices
        .iter()
        .map(|&i| *elts[i].terms())
        .collect();
    let prepared = PreparedLayer::from_parts(lookups?, fin, layer.terms);

    let file = std::io::BufReader::new(std::fs::File::open(&opts.input)?);
    let mut reader = YetStreamReader::open(file)?;
    let start = std::time::Instant::now();
    let ylt = ara_core::io::analyse_layer_streamed(&mut reader, &prepared)?;
    let elapsed = start.elapsed().as_secs_f64();
    Ok(format!(
        "streamed {} trials out-of-core in {:.1} ms
  layer {}: AAL {:.2}  max year loss {:.2}  P(attach) {:.3}
",
        num_trials,
        elapsed * 1e3,
        layer.id.0,
        ylt.mean(),
        ylt.max(),
        ylt.attachment_probability(),
    ))
}

/// `ara seasonal`: occurrence and paid-loss attribution by position in
/// the contractual year.
pub fn run_seasonal(opts: &RunOpts) -> Result<String, CliError> {
    use ara_core::PreparedLayer;
    use ara_metrics::seasonality::seasonal_profile;

    let inputs = load(&opts.input)?;
    let layer = inputs
        .layers
        .get(opts.layer)
        .ok_or_else(|| CliError::Invalid(format!("layer {} out of range", opts.layer)))?;
    let prepared = PreparedLayer::<f64>::prepare(&inputs, layer)?;
    let profile = seasonal_profile(&inputs.yet, &prepared, opts.bins.max(1));
    let shares = profile.loss_shares();
    let mut report = format!(
        "seasonal profile of layer {} over {} bins (occurrences | paid-loss share):
",
        layer.id.0,
        profile.num_bins()
    );
    for (b, (&occ, &share)) in profile.occurrences.iter().zip(&shares).enumerate() {
        let bar = "#".repeat((share * 100.0 / 2.0).round() as usize);
        report.push_str(&format!(
            "  bin {b:>3}: {occ:>8} occurrences  {:>5.1}%  {bar}
",
            share * 100.0
        ));
    }
    report.push_str(&format!(
        "peak bin: {}
",
        profile.peak_bin()
    ));
    Ok(report)
}

/// The outcome of `ara perf`: the rendered report plus whether the
/// regression gate failed (drives the process exit code).
#[derive(Debug, Clone, PartialEq)]
pub struct PerfOutcome {
    /// Rendered report in the requested format.
    pub report: String,
    /// True when `gate` found a statistically supported regression.
    pub gate_failed: bool,
}

fn perf_store(opts: &PerfOpts) -> BaselineStore {
    match &opts.history {
        Some(p) => BaselineStore::open(p.as_str()),
        None => BaselineStore::open(BaselineStore::default_path()),
    }
}

fn perf_policy(opts: &PerfOpts) -> GatePolicy {
    GatePolicy {
        allowed_regression_pct: opts.threshold_pct,
        ..GatePolicy::default()
    }
}

fn render_comparisons(
    comparisons: &[ara_bench::perf::Comparison],
    format: PerfFormat,
    policy: &GatePolicy,
) -> String {
    match format {
        PerfFormat::Summary => render::summary(comparisons, policy),
        PerfFormat::Json => render::json_report(comparisons),
        PerfFormat::Markdown => render::markdown(comparisons),
    }
}

/// Render loader warnings, collapsing the per-line malformed-history
/// warnings to the first occurrence plus a suppressed count — one
/// corrupted file must not flood every perf command. The library keeps
/// the full per-line list ([`ara_bench::perf::HistoryLoad`]); only this
/// print layer deduplicates.
fn warnings_preamble(warnings: &[String]) -> String {
    let mut out = String::new();
    let mut malformed = 0usize;
    for w in warnings {
        if w.contains("skipped malformed history line") {
            malformed += 1;
            if malformed > 1 {
                continue;
            }
        }
        out.push_str(&format!("warning: {w}\n"));
    }
    if malformed > 1 {
        out.push_str(&format!(
            "warning: {} more malformed history line(s) suppressed\n",
            malformed - 1
        ));
    }
    out
}

/// `ara perf`: record the engine-suite timings, compare or gate against
/// the host's recorded baseline, or report the history trajectory.
pub fn run_perf(opts: &PerfOpts) -> Result<PerfOutcome, CliError> {
    let store = perf_store(opts);
    let policy = perf_policy(opts);
    let preset = if opts.small {
        Preset::Small
    } else {
        Preset::Bench
    };
    match opts.action {
        PerfAction::Record => {
            let records = run_suite(preset, opts.repeats);
            store.append(&records)?;
            let mut report = format!(
                "recorded run {} ({} benchmarks x {} repeats, preset {}) to {}\n",
                records[0].run_id,
                records.len(),
                opts.repeats,
                preset.name(),
                store.path().display(),
            );
            for r in &records {
                report.push_str(&format!(
                    "  {:<24} median {:>10.3} ms\n",
                    r.benchmark,
                    r.median_secs() * 1e3
                ));
            }
            Ok(PerfOutcome {
                report,
                gate_failed: false,
            })
        }
        PerfAction::Compare => {
            let loaded = store.load();
            let manifest = ara_bench::perf::RunManifest::collect(preset.name(), opts.repeats);
            let runs = group_runs(&loaded.records, &manifest.host_fingerprint());
            if runs.len() < 2 {
                let diagnostics =
                    ara_bench::perf::baseline_miss_diagnostics(&loaded.records, &manifest)
                        .unwrap_or_default();
                return Ok(PerfOutcome {
                    report: format!(
                        "{}perf compare: need at least two recorded runs for this host in {} (have {})\n{diagnostics}",
                        warnings_preamble(&loaded.warnings),
                        store.path().display(),
                        runs.len(),
                    ),
                    gate_failed: false,
                });
            }
            let baseline = &runs[runs.len() - 2].1;
            let candidate = &runs[runs.len() - 1].1;
            let comparisons = compare_runs(baseline, candidate, &policy);
            Ok(PerfOutcome {
                report: format!(
                    "{}{}",
                    warnings_preamble(&loaded.warnings),
                    render_comparisons(&comparisons, opts.format, &policy)
                ),
                gate_failed: false,
            })
        }
        PerfAction::Gate => {
            let loaded = store.load();
            let candidate = run_suite(preset, opts.repeats);
            let fingerprint = candidate[0].manifest.host_fingerprint();
            let runs = group_runs(&loaded.records, &fingerprint);
            let Some((_, baseline)) = runs.last() else {
                let diagnostics = ara_bench::perf::baseline_miss_diagnostics(
                    &loaded.records,
                    &candidate[0].manifest,
                )
                .unwrap_or_default();
                store.append(&candidate)?;
                return Ok(PerfOutcome {
                    report: format!(
                        "{}perf gate: no baseline for this host in {}; recorded run {} as the bootstrap baseline (pass)\n{diagnostics}",
                        warnings_preamble(&loaded.warnings),
                        store.path().display(),
                        candidate[0].run_id,
                    ),
                    gate_failed: false,
                });
            };
            let cand_refs: Vec<&RunRecord> = candidate.iter().collect();
            let comparisons = compare_runs(baseline, &cand_refs, &policy);
            let gate_failed = any_regression(&comparisons);
            let mut report = format!(
                "{}{}",
                warnings_preamble(&loaded.warnings),
                render_comparisons(&comparisons, opts.format, &policy)
            );
            if opts.format == PerfFormat::Summary {
                report.push_str(if gate_failed {
                    "perf gate: FAIL\n"
                } else {
                    "perf gate: PASS\n"
                });
            }
            Ok(PerfOutcome {
                report,
                gate_failed,
            })
        }
        PerfAction::Trend => {
            let loaded = store.load();
            let fingerprint = ara_bench::perf::RunManifest::collect(preset.name(), opts.repeats)
                .host_fingerprint();
            let runs = group_runs(&loaded.records, &fingerprint);
            Ok(PerfOutcome {
                report: format!(
                    "{}{}",
                    warnings_preamble(&loaded.warnings),
                    render::trend(&runs)
                ),
                gate_failed: false,
            })
        }
        PerfAction::Report => {
            let loaded = store.load();
            let fingerprint = ara_bench::perf::RunManifest::collect(preset.name(), opts.repeats)
                .host_fingerprint();
            let runs = group_runs(&loaded.records, &fingerprint);
            let body = match opts.format {
                PerfFormat::Json => {
                    let mut out = String::from("[");
                    for (i, (_, records)) in runs.iter().enumerate() {
                        for (j, r) in records.iter().enumerate() {
                            if i > 0 || j > 0 {
                                out.push(',');
                            }
                            out.push_str(&r.to_json());
                        }
                    }
                    out.push_str("]\n");
                    out
                }
                _ => render::trajectory(&runs),
            };
            Ok(PerfOutcome {
                report: format!("{}{}", warnings_preamble(&loaded.warnings), body),
                gate_failed: false,
            })
        }
    }
}

/// Text rendering of the registry snapshot plus flight/anomaly state —
/// the `ara obs report` default. The counter/gauge/histogram values are
/// the same [`ara_trace::MetricsSnapshot`] the Prometheus and JSON
/// formats render, so the three surfaces can never disagree.
fn obs_text(engine: &str, wall: std::time::Duration, snap: &ara_trace::MetricsSnapshot) -> String {
    use std::fmt::Write as _;
    let mut text = format!(
        "observability report ({engine}, analysed in {:.1} ms)\n",
        wall.as_secs_f64() * 1e3
    );
    if !snap.counters.is_empty() {
        text.push_str("counters:\n");
        for (id, v) in &snap.counters {
            let _ = writeln!(text, "  {:<44} {v}", id.full());
        }
    }
    if !snap.gauges.is_empty() {
        text.push_str("gauges:\n");
        for (id, v) in &snap.gauges {
            let _ = writeln!(text, "  {:<44} {v}", id.full());
        }
    }
    if !snap.histograms.is_empty() {
        text.push_str("histograms:\n");
        for (id, h) in &snap.histograms {
            let _ = writeln!(
                text,
                "  {:<44} count {} p50 {} p95 {} max {}",
                id.full(),
                h.count,
                h.quantile(0.50),
                h.quantile(0.95),
                h.max,
            );
        }
    }
    let f = ara_trace::flight().snapshot();
    let _ = writeln!(
        text,
        "flight recorder: {} event(s) in ring ({} recorded, {} dropped, {} thread(s), cap {})",
        f.events.len(),
        f.recorded,
        f.dropped,
        f.threads,
        ara_trace::flight().capacity(),
    );
    let a = ara_trace::anomaly().report();
    match &a.last {
        Some(flag) => {
            let _ = writeln!(
                text,
                "anomalies: {} flag(s); last: stage {} at {:.3} ms vs {:.3} ms baseline{}",
                a.flags,
                flag.stage,
                flag.observed_ns as f64 / 1e6,
                flag.baseline_ns as f64 / 1e6,
                match &a.dumped_to {
                    Some(p) => format!(" (flight dump: {})", p.display()),
                    None => String::new(),
                },
            );
        }
        None => {
            let _ = writeln!(text, "anomalies: none flagged");
        }
    }
    text
}

/// `ara obs`: run an analysis with observability live, then either dump
/// the flight recorder as JSONL (`dump`) or render the unified metrics
/// registry (`report`).
pub fn run_obs(opts: &ObsOpts) -> Result<String, CliError> {
    let inputs = load(&opts.run.input)?;
    let engine = build_engine(&opts.run);
    // Give the anomaly detector a dump target unless the env already
    // chose one; `--out` doubles as the anomaly-dump path.
    if std::env::var_os("ARA_FLIGHT_DUMP").is_none() {
        ara_trace::anomaly().set_dump_path(Some(std::path::PathBuf::from(&opts.out)));
    }
    // Traced at Info so the per-stage spans land in the flight ring and
    // the anomaly baselines observe the run.
    ara_trace::recorder().enable(trace_level(0));
    let result = engine.analyse(&inputs);
    let _ = ara_trace::recorder().drain();
    ara_trace::recorder().disable();
    let out = result?;
    match opts.action {
        ObsAction::Dump => {
            let snap = ara_trace::flight().snapshot();
            let trace = snap.to_trace();
            std::fs::write(&opts.out, ara_trace::to_jsonl(&trace))?;
            Ok(format!(
                "flight recorder: {} event(s) ({} recorded, {} dropped, {} thread(s)) written to {}\n",
                trace.spans.len(),
                snap.recorded,
                snap.dropped,
                snap.threads,
                opts.out,
            ))
        }
        ObsAction::Report => {
            let snap = ara_trace::metrics().snapshot();
            Ok(match opts.format {
                ObsFormat::Prometheus => ara_trace::to_prometheus(&snap),
                ObsFormat::Json => ara_trace::to_metrics_json(&snap),
                ObsFormat::Text => obs_text(engine.name(), out.wall, &snap),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("ara-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    fn small_generate(out: &str) -> GenerateOpts {
        GenerateOpts {
            trials: 300,
            events: 12.0,
            elts: 5,
            records: 100,
            catalogue: 3_000,
            layers: 2,
            seed: 9,
            out: out.to_string(),
            layout: Layout::Columnar,
        }
    }

    #[test]
    fn generate_then_analyse_round_trip() {
        let path = tmp("book1.ara");
        let msg = run_generate(&small_generate(&path)).unwrap();
        assert!(msg.contains("300 trials"));
        let report = run_analyse(&RunOpts {
            input: path,
            engine: EngineKind::MultiGpu,
            devices: 2,
            ..RunOpts::default()
        })
        .unwrap();
        assert!(report.contains("multi-gpu"));
        assert!(report.contains("layer"));
    }

    #[test]
    fn engines_agree_through_the_cli_path() {
        let path = tmp("book2.ara");
        run_generate(&small_generate(&path)).unwrap();
        let inputs = load(&path).unwrap();
        let seq = SequentialEngine::<f64>::new().analyse(&inputs).unwrap();
        let gpu = GpuBasicEngine::new().analyse(&inputs).unwrap();
        assert_eq!(
            seq.portfolio.layer_ylt(0).year_losses(),
            gpu.portfolio.layer_ylt(0).year_losses()
        );
    }

    #[test]
    fn metrics_reports_summary() {
        let path = tmp("book3.ara");
        run_generate(&small_generate(&path)).unwrap();
        let report = run_metrics(&RunOpts {
            input: path.clone(),
            layer: 1,
            ..RunOpts::default()
        })
        .unwrap();
        assert!(report.contains("AAL"));
        assert!(report.contains("TVaR99"));
        assert!(report.contains("AEP curve"));
        // Out-of-range layer errors cleanly.
        let err = run_metrics(&RunOpts {
            input: path,
            layer: 9,
            ..RunOpts::default()
        });
        assert!(matches!(err, Err(CliError::Invalid(_))));
    }

    #[test]
    fn model_reports_paper_scale() {
        let report = run_model(&RunOpts {
            engine: EngineKind::MultiGpu,
            devices: 4,
            ..RunOpts::default()
        })
        .unwrap();
        assert!(report.contains("multi-gpu"));
        assert!(report.contains("lookup"));
    }

    #[test]
    fn stream_round_trip_matches_in_memory() {
        let path = tmp("book-stream.ara");
        let mut opts = small_generate(&path);
        opts.layout = Layout::Interleaved;
        run_generate(&opts).unwrap();
        let report = run_stream(&RunOpts {
            input: path,
            ..RunOpts::default()
        })
        .unwrap();
        assert!(report.contains("streamed 300 trials"));
        assert!(report.contains("AAL"));
    }

    #[test]
    fn stream_rejects_columnar_snapshots() {
        let path = tmp("book-col.ara");
        run_generate(&small_generate(&path)).unwrap();
        let err = run_stream(&RunOpts {
            input: path,
            ..RunOpts::default()
        });
        assert!(matches!(err, Err(CliError::Snapshot(_))));
    }

    #[test]
    fn seasonal_report_shows_bins() {
        let path = tmp("book-seasonal.ara");
        run_generate(&small_generate(&path)).unwrap();
        let report = run_seasonal(&RunOpts {
            input: path,
            bins: 6,
            ..RunOpts::default()
        })
        .unwrap();
        let bin_lines = report
            .lines()
            .filter(|l| l.trim_start().starts_with("bin "))
            .count();
        assert_eq!(bin_lines, 6, "one line per bin");
        assert!(report.contains("peak bin"));
    }

    #[test]
    fn analyse_with_trace_out_writes_valid_chrome_trace() {
        let _guard = ara_trace::testing::serial_guard();
        ara_trace::testing::reset();
        let book = tmp("book-trace.ara");
        run_generate(&small_generate(&book)).unwrap();
        let trace_path = tmp("run.json");
        let report = run_analyse(&RunOpts {
            input: book,
            trace_out: Some(trace_path.clone()),
            ..RunOpts::default()
        })
        .unwrap();
        assert!(report.contains("trace:"), "report: {report}");

        // The file is valid JSON in the Chrome trace_event schema, with
        // spans for all four Algorithm-1 stages.
        let text = std::fs::read_to_string(&trace_path).unwrap();
        let doc = ara_trace::json::parse(&text).expect("valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .expect("traceEvents array");
        assert!(!events.is_empty());
        for stage in ara_trace::stage_names::ALL {
            assert!(
                events.iter().any(|e| {
                    e.get("name").and_then(|n| n.as_str()) == Some(stage)
                        && e.get("ph").and_then(|p| p.as_str()) == Some("X")
                }),
                "missing complete-event for stage {stage}"
            );
        }
    }

    #[test]
    fn quiet_suppresses_layer_lines_and_v_appends_summary() {
        let _guard = ara_trace::testing::serial_guard();
        ara_trace::testing::reset();
        let book = tmp("book-quiet.ara");
        run_generate(&small_generate(&book)).unwrap();
        let quiet = run_analyse(&RunOpts {
            input: book.clone(),
            quiet: true,
            ..RunOpts::default()
        })
        .unwrap();
        assert!(!quiet.contains("AAL"), "quiet report: {quiet}");

        let verbose = run_analyse(&RunOpts {
            input: book,
            verbosity: 1,
            ..RunOpts::default()
        })
        .unwrap();
        // -v without --trace-out appends the human tree summary.
        assert!(verbose.contains("engine.analyse"), "report: {verbose}");
        assert!(verbose.contains("measured:"), "report: {verbose}");
    }

    #[test]
    fn trace_level_mapping() {
        assert_eq!(trace_level(0), ara_trace::Level::Info);
        assert_eq!(trace_level(1), ara_trace::Level::Debug);
        assert_eq!(trace_level(2), ara_trace::Level::Trace);
        assert_eq!(trace_level(9), ara_trace::Level::Trace);
    }

    fn perf_opts(action: PerfAction, history: &str) -> PerfOpts {
        PerfOpts {
            action,
            small: true,
            repeats: 3,
            history: Some(history.to_string()),
            format: PerfFormat::Summary,
            // Generous threshold so host noise can never fail the clean
            // rerun; the injected slowdown below is far larger.
            threshold_pct: 50.0,
        }
    }

    #[test]
    fn perf_gate_passes_clean_and_fails_injected_slowdown() {
        // run_suite toggles the global recorder; serialise with the
        // other tracing tests. The guard also serialises the
        // ARA_PERF_PERTURB env hook.
        let _guard = ara_trace::testing::serial_guard();
        ara_trace::testing::reset();
        std::env::remove_var("ARA_PERF_PERTURB");
        let history = tmp("perf-gate-history.jsonl");
        std::fs::remove_file(&history).ok();

        // 1. Empty history: the gate bootstraps a baseline and passes.
        let first = run_perf(&perf_opts(PerfAction::Gate, &history)).unwrap();
        assert!(!first.gate_failed);
        assert!(
            first.report.contains("bootstrap baseline"),
            "{}",
            first.report
        );

        // 2. Clean rerun on the same machine: pass.
        let clean = run_perf(&perf_opts(PerfAction::Gate, &history)).unwrap();
        assert!(
            !clean.gate_failed,
            "clean rerun regressed:\n{}",
            clean.report
        );
        assert!(clean.report.contains("perf gate: PASS"), "{}", clean.report);

        // 3. Injected 20x slowdown via the test hook: fail, naming the
        //    benchmark and its worst-moving stage.
        std::env::set_var("ARA_PERF_PERTURB", "20.0");
        let slow = run_perf(&perf_opts(PerfAction::Gate, &history)).unwrap();
        std::env::remove_var("ARA_PERF_PERTURB");
        assert!(
            slow.gate_failed,
            "injected slowdown not caught:\n{}",
            slow.report
        );
        assert!(slow.report.contains("REGRESSED"), "{}", slow.report);
        assert!(
            slow.report.contains("engine.sequential-cpu"),
            "{}",
            slow.report
        );
        assert!(slow.report.contains("perf gate: FAIL"), "{}", slow.report);
        std::fs::remove_file(&history).ok();
    }

    #[test]
    fn perf_record_compare_report_round_trip() {
        let _guard = ara_trace::testing::serial_guard();
        ara_trace::testing::reset();
        std::env::remove_var("ARA_PERF_PERTURB");
        let history = tmp("perf-record-history.jsonl");
        std::fs::remove_file(&history).ok();

        // Before anything is recorded, compare and report degrade
        // gracefully.
        let empty = run_perf(&perf_opts(PerfAction::Report, &history)).unwrap();
        assert!(
            empty.report.contains("no runs recorded"),
            "{}",
            empty.report
        );
        let short = run_perf(&perf_opts(PerfAction::Compare, &history)).unwrap();
        assert!(short.report.contains("at least two"), "{}", short.report);

        // History accumulates across two recorded runs…
        run_perf(&perf_opts(PerfAction::Record, &history)).unwrap();
        run_perf(&perf_opts(PerfAction::Record, &history)).unwrap();
        let lines = std::fs::read_to_string(&history).unwrap().lines().count();
        assert_eq!(lines, 10, "5 engines x 2 runs, one line each");

        // …compare diffs the two latest runs, and report renders the
        // trajectory.
        let cmp = run_perf(&perf_opts(PerfAction::Compare, &history)).unwrap();
        assert!(!cmp.gate_failed);
        assert!(cmp.report.contains("engine.multi-gpu"), "{}", cmp.report);
        let rep = run_perf(&perf_opts(PerfAction::Report, &history)).unwrap();
        assert!(rep.report.contains("2 run(s)"), "{}", rep.report);
        assert!(rep.report.contains("vs prev"), "{}", rep.report);

        // The JSON format round-trips through the in-repo parser.
        let mut json_opts = perf_opts(PerfAction::Report, &history);
        json_opts.format = PerfFormat::Json;
        let js = run_perf(&json_opts).unwrap();
        let doc = ara_trace::json::parse(js.report.trim()).expect("valid JSON report");
        assert_eq!(doc.as_array().unwrap().len(), 10);
        std::fs::remove_file(&history).ok();
    }

    #[test]
    fn analyse_with_check_reports_clean_kernels() {
        let path = tmp("book-check.ara");
        run_generate(&small_generate(&path)).unwrap();
        for engine in [
            EngineKind::Sequential,
            EngineKind::GpuBasic,
            EngineKind::GpuOptimised,
            EngineKind::MultiGpu,
        ] {
            let outcome = run_analyse_outcome(&RunOpts {
                input: path.clone(),
                engine,
                devices: 2,
                check: true,
                ..RunOpts::default()
            })
            .unwrap();
            assert!(!outcome.check_failed, "{engine:?}: {}", outcome.report);
            assert!(
                outcome.report.contains("simt-check: clean"),
                "{engine:?}: {}",
                outcome.report
            );
        }
        // Without --check the report says nothing about checking, and
        // the plain wrapper still returns the bare string.
        let plain = run_analyse(&RunOpts {
            input: path,
            engine: EngineKind::GpuOptimised,
            ..RunOpts::default()
        })
        .unwrap();
        assert!(!plain.contains("simt-check"), "{plain}");
    }

    #[test]
    fn analyse_with_verify_proves_all_engines_safe() {
        let path = tmp("book-verify.ara");
        run_generate(&small_generate(&path)).unwrap();
        for engine in [
            EngineKind::Sequential,
            EngineKind::Multicore,
            EngineKind::GpuBasic,
            EngineKind::GpuOptimised,
            EngineKind::MultiGpu,
        ] {
            let outcome = run_analyse_outcome(&RunOpts {
                input: path.clone(),
                engine,
                devices: 2,
                verify: true,
                ..RunOpts::default()
            })
            .unwrap();
            assert!(!outcome.verify_failed, "{engine:?}: {}", outcome.report);
            assert!(
                outcome.report.contains("simt-verify:"),
                "{engine:?}: {}",
                outcome.report
            );
            // GPU engines carry real kernel proofs; CPU engines report
            // the trivial no-kernel verdict. Both must read proven-safe.
            let expect = match engine {
                EngineKind::Sequential | EngineKind::Multicore => "no SIMT kernels",
                _ => "proven-safe for all launch geometries",
            };
            assert!(
                outcome.report.contains(expect),
                "{engine:?}: {}",
                outcome.report
            );
        }
        // Without --verify the report says nothing about verification.
        let plain = run_analyse(&RunOpts {
            input: path,
            engine: EngineKind::GpuOptimised,
            ..RunOpts::default()
        })
        .unwrap();
        assert!(!plain.contains("simt-verify"), "{plain}");
        std::fs::remove_file(tmp("book-verify.ara")).ok();
    }

    #[test]
    fn counters_off_leaves_analysis_output_identical() {
        // The degradation contract: with ARA_COUNTERS=off (and equally
        // on denied hosts), --counters changes nothing but the stderr
        // notice — same report bytes, same check verdict.
        let _guard = ara_trace::testing::serial_guard();
        ara_trace::testing::reset();
        let book = tmp("book-counters-off.ara");
        run_generate(&small_generate(&book)).unwrap();
        let plain = run_analyse_outcome(&RunOpts {
            input: book.clone(),
            ..RunOpts::default()
        })
        .unwrap();
        assert!(plain.counters_notice.is_none());

        std::env::set_var("ARA_COUNTERS", "off");
        let with_flag = run_analyse_outcome(&RunOpts {
            input: book.clone(),
            counters: true,
            ..RunOpts::default()
        })
        .unwrap();
        std::env::remove_var("ARA_COUNTERS");
        // The header line carries wall-clock ms (nondeterministic);
        // everything after it must match byte for byte.
        let body = |r: &str| r.split_once('\n').map(|(_, b)| b.to_string()).unwrap();
        assert_eq!(
            body(&with_flag.report),
            body(&plain.report),
            "stdout must not move"
        );
        assert_eq!(
            with_flag.report.split(" in ").next(),
            plain.report.split(" in ").next(),
            "header prefix must not move"
        );
        assert_eq!(with_flag.check_failed, plain.check_failed);
        let notice = with_flag.counters_notice.expect("one notice");
        assert!(notice.contains("counters unavailable"), "{notice}");
        assert!(!ara_trace::counters::sampling_enabled());
        assert!(!ara_trace::recorder().is_enabled(), "recorder left off");
    }

    #[test]
    fn counters_live_append_the_roofline_section() {
        // On hosts that can sample, --counters appends the per-stage
        // table; everything before it (the layer lines) is unchanged.
        let _guard = ara_trace::testing::serial_guard();
        ara_trace::testing::reset();
        std::env::remove_var("ARA_COUNTERS");
        let book = tmp("book-counters-on.ara");
        run_generate(&small_generate(&book)).unwrap();
        let plain = run_analyse_outcome(&RunOpts {
            input: book.clone(),
            ..RunOpts::default()
        })
        .unwrap();
        let probe = ara_trace::counters::enable();
        ara_trace::counters::disable();
        let outcome = run_analyse_outcome(&RunOpts {
            input: book,
            counters: true,
            ..RunOpts::default()
        })
        .unwrap();
        if probe {
            assert!(outcome.counters_notice.is_none());
            assert!(
                outcome.report.contains("hardware counters"),
                "{}",
                outcome.report
            );
            assert!(outcome.report.contains("bottleneck"), "{}", outcome.report);
            assert!(
                outcome.report.starts_with(
                    plain
                        .report
                        .lines()
                        .next()
                        .unwrap()
                        .split(" in ")
                        .next()
                        .unwrap()
                ),
                "prefix moved: {}",
                outcome.report
            );
        } else {
            // Denied host: behaves exactly like the forced-off test.
            // (Compare past the header line, whose timings jitter.)
            assert!(outcome.counters_notice.is_some());
            let body = |r: &str| r.split_once('\n').map(|(_, b)| b.to_string()).unwrap();
            assert_eq!(body(&outcome.report), body(&plain.report));
        }
        assert!(!ara_trace::counters::sampling_enabled());
    }

    #[test]
    fn perf_baseline_miss_is_diagnosed_not_bare() {
        let _guard = ara_trace::testing::serial_guard();
        ara_trace::testing::reset();
        std::env::remove_var("ARA_PERF_PERTURB");
        let history = tmp("perf-foreign-history.jsonl");
        std::fs::remove_file(&history).ok();

        // Record one real run, then rewrite its lines as a foreign host
        // (different thread count) so the fingerprint can't match.
        run_perf(&perf_opts(PerfAction::Record, &history)).unwrap();
        let text = std::fs::read_to_string(&history).unwrap();
        let threads = std::thread::available_parallelism().unwrap().get();
        let foreign = text.replace(
            &format!("\"threads\":{threads}"),
            &format!("\"threads\":{}", threads + 7),
        );
        assert_ne!(foreign, text, "thread count must appear in manifests");
        std::fs::write(&history, foreign).unwrap();

        let cmp = run_perf(&perf_opts(PerfAction::Compare, &history)).unwrap();
        assert!(cmp.report.contains("at least two"), "{}", cmp.report);
        assert!(
            cmp.report.contains("none matching this host's fingerprint"),
            "{}",
            cmp.report
        );
        assert!(
            cmp.report
                .contains(&format!("threads {} -> {threads}", threads + 7)),
            "{}",
            cmp.report
        );
        std::fs::remove_file(&history).ok();
    }

    #[test]
    fn analyse_missing_file_is_io_error() {
        let err = run_analyse(&RunOpts {
            input: tmp("does-not-exist.ara"),
            ..RunOpts::default()
        });
        assert!(matches!(err, Err(CliError::Io(_))));
    }

    #[test]
    fn analyse_rejects_garbage_snapshot() {
        let path = tmp("garbage.ara");
        std::fs::write(&path, b"not a snapshot at all").unwrap();
        let err = run_analyse(&RunOpts {
            input: path,
            ..RunOpts::default()
        });
        assert!(matches!(err, Err(CliError::Snapshot(_))));
    }

    #[test]
    fn obs_dump_writes_flight_jsonl() {
        let _guard = ara_trace::testing::serial_guard();
        ara_trace::testing::reset();
        let book = tmp("book-obs-dump.ara");
        run_generate(&small_generate(&book)).unwrap();
        let out = tmp("obs-dump.jsonl");
        let msg = run_obs(&ObsOpts {
            action: ObsAction::Dump,
            run: RunOpts {
                input: book,
                ..RunOpts::default()
            },
            out: out.clone(),
            format: ObsFormat::default(),
        })
        .unwrap();
        assert!(msg.contains("written to"), "{msg}");
        let dump = std::fs::read_to_string(&out).unwrap();
        assert!(
            dump.lines().any(|l| l.contains("\"name\"")),
            "dump carries span events:\n{dump}"
        );
        // The Algorithm-1 stage spans made it into the ring.
        assert!(dump.contains("analyse"), "{dump}");
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn obs_report_formats_render_the_same_registry() {
        let _guard = ara_trace::testing::serial_guard();
        ara_trace::testing::reset();
        let book = tmp("book-obs-report.ara");
        run_generate(&small_generate(&book)).unwrap();
        let opts = |format| ObsOpts {
            action: ObsAction::Report,
            run: RunOpts {
                input: book.clone(),
                ..RunOpts::default()
            },
            out: tmp("obs-report-dump.jsonl"),
            format,
        };
        let text = run_obs(&opts(ObsFormat::Text)).unwrap();
        assert!(text.contains("observability report"), "{text}");
        assert!(text.contains("ara.analyses"), "{text}");
        assert!(text.contains("flight recorder:"), "{text}");
        // The other two formats render the *same* registry the text
        // report drew from — the analysis counter keeps its value.
        let snap = ara_trace::metrics().snapshot();
        let (id, count) = snap
            .counters
            .iter()
            .find(|(id, _)| id.name == "ara.analyses")
            .expect("analysis counter registered");
        assert_eq!(*count, 1, "{}", id.full());
        let prom = ara_trace::to_prometheus(&snap);
        assert!(
            prom.contains(&format!(
                "ara_analyses{{engine=\"sequential-cpu\"}} {count}"
            )),
            "{prom}"
        );
        let json = ara_trace::to_metrics_json(&snap);
        assert!(json.contains("\"ara.analyses\""), "{json}");
        assert!(json.contains("sequential-cpu"), "{json}");
    }

    #[test]
    fn flight_recorder_off_leaves_analysis_output_identical() {
        // Disabled-path contract: turning the always-on flight recorder
        // off must not move a single stdout byte past the wall-clock
        // header — observability is a pure side channel.
        let _guard = ara_trace::testing::serial_guard();
        ara_trace::testing::reset();
        let book = tmp("book-flight-off.ara");
        run_generate(&small_generate(&book)).unwrap();
        let on = run_analyse_outcome(&RunOpts {
            input: book.clone(),
            ..RunOpts::default()
        })
        .unwrap();
        assert!(
            ara_trace::flight().snapshot().recorded > 0,
            "flight recorder captures untraced runs by default"
        );
        ara_trace::flight().set_enabled(false);
        let off = run_analyse_outcome(&RunOpts {
            input: book,
            ..RunOpts::default()
        })
        .unwrap();
        ara_trace::flight().set_enabled(true);
        let body = |r: &str| r.split_once('\n').map(|(_, b)| b.to_string()).unwrap();
        assert_eq!(body(&on.report), body(&off.report), "stdout must not move");
        assert_eq!(on.check_failed, off.check_failed);
    }

    #[test]
    fn pmu_less_mock_reader_degrades_without_touching_flight() {
        // A PMU-less host: every counter read fails. The bracketing
        // path degrades to ZERO deltas while the flight recorder keeps
        // capturing, and the analysis report stays byte-identical.
        let _guard = ara_trace::testing::serial_guard();
        ara_trace::testing::reset();
        let mut mock = ara_trace::MockReader::new(vec![]);
        let mut lap = ara_trace::LapTimer::start_with(&mut mock);
        assert_eq!(
            lap.lap_with(&mut mock),
            ara_trace::CounterValues::ZERO,
            "denied reads yield ZERO, never garbage"
        );
        let book = tmp("book-mock-pmu.ara");
        run_generate(&small_generate(&book)).unwrap();
        let plain = run_analyse_outcome(&RunOpts {
            input: book.clone(),
            ..RunOpts::default()
        })
        .unwrap();
        let recorded_before = ara_trace::flight().snapshot().recorded;
        let again = run_analyse_outcome(&RunOpts {
            input: book,
            ..RunOpts::default()
        })
        .unwrap();
        let body = |r: &str| r.split_once('\n').map(|(_, b)| b.to_string()).unwrap();
        assert_eq!(body(&plain.report), body(&again.report));
        assert!(
            ara_trace::flight().snapshot().recorded > recorded_before,
            "flight recorder kept running through the denied-counter path"
        );
    }
}
