//! Reinstatement provisions for eXcess-of-Loss layers.
//!
//! The paper's algorithm cites catastrophe XL pricing *with reinstatement
//! provisions* (its reference: Anderson & Dong) — the reason Algorithm 1
//! keeps the elaborate per-event prefix-sum/clamp/difference form of the
//! aggregate terms rather than a single clamp of the total: the
//! *marginal* payout per occurrence determines how much limit is consumed
//! and therefore the reinstatement premium owed.
//!
//! A layer with occurrence limit `L` and `k` paid reinstatements carries
//! total annual capacity `(k + 1) × L`. Each time part of the limit is
//! consumed, the cedant pays a pro-rata reinstatement premium:
//! `rate × (consumed / L) × upfront_premium`, with only the first
//! `k × L` of consumption reinstateable.

use ara_core::YearLossTable;

/// Terms of a reinstatement provision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReinstatementTerms {
    /// Number of paid reinstatements (`k`).
    pub count: u32,
    /// Premium rate per full reinstatement, as a fraction of the upfront
    /// premium (e.g. 1.0 = "one at 100%").
    pub rate: f64,
}

impl ReinstatementTerms {
    /// The aggregate limit implied by an occurrence limit under these
    /// terms: `(count + 1) × occ_limit`.
    pub fn implied_aggregate_limit(&self, occ_limit: f64) -> f64 {
        (self.count as f64 + 1.0) * occ_limit
    }

    /// Reinstatement premium for one trial year, given the year's
    /// aggregate paid loss, the occurrence limit, and the upfront
    /// premium: pro-rata on the reinstateable consumption
    /// `min(year_loss, count × occ_limit)`.
    ///
    /// # Panics
    /// Panics if `occ_limit <= 0`.
    pub fn premium_for_year(&self, year_loss: f64, occ_limit: f64, upfront: f64) -> f64 {
        assert!(occ_limit > 0.0, "occurrence limit must be positive");
        let reinstateable = year_loss.min(self.count as f64 * occ_limit).max(0.0);
        self.rate * (reinstateable / occ_limit) * upfront
    }
}

/// Expected annual reinstatement premium over a YLT.
pub fn expected_reinstatement_premium(
    ylt: &YearLossTable,
    terms: &ReinstatementTerms,
    occ_limit: f64,
    upfront: f64,
) -> f64 {
    if ylt.is_empty() {
        return 0.0;
    }
    ylt.year_losses()
        .iter()
        .map(|&l| terms.premium_for_year(l, occ_limit, upfront))
        .sum::<f64>()
        / ylt.num_trials() as f64
}

/// Solve for the upfront premium `P` such that total expected premium
/// income (upfront + expected reinstatement premiums, which scale with
/// `P`) equals the expected loss plus a loading:
///
/// `P + E[reinstatement premium | P] = (1 + loading) × AAL`
///
/// Since the reinstatement premium is linear in `P`, the solution is
/// closed-form: `P = (1 + loading) × AAL / (1 + rate × E[consumed]/L)`.
///
/// Returns `None` for an empty YLT.
pub fn breakeven_upfront_premium(
    ylt: &YearLossTable,
    terms: &ReinstatementTerms,
    occ_limit: f64,
    loading: f64,
) -> Option<f64> {
    if ylt.is_empty() {
        return None;
    }
    let aal = ylt.mean();
    // Expected reinstatement factor per unit of upfront premium.
    let factor = expected_reinstatement_premium(ylt, terms, occ_limit, 1.0);
    Some((1.0 + loading) * aal / (1.0 + factor))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn terms() -> ReinstatementTerms {
        ReinstatementTerms {
            count: 2,
            rate: 1.0,
        }
    }

    #[test]
    fn implied_aggregate_limit() {
        assert_eq!(terms().implied_aggregate_limit(10.0e6), 30.0e6);
        assert_eq!(
            ReinstatementTerms {
                count: 0,
                rate: 0.0
            }
            .implied_aggregate_limit(5.0),
            5.0
        );
    }

    #[test]
    fn premium_is_pro_rata() {
        // Half the limit consumed → half a reinstatement premium.
        let p = terms().premium_for_year(5.0e6, 10.0e6, 1.0e6);
        assert!((p - 0.5e6).abs() < 1e-6);
        // Zero loss → zero premium.
        assert_eq!(terms().premium_for_year(0.0, 10.0e6, 1.0e6), 0.0);
    }

    #[test]
    fn premium_caps_at_count_reinstatements() {
        // Consumption beyond count × L is not reinstateable: a 50M year
        // against 10M limit and 2 reinstatements pays exactly 2 full
        // reinstatement premiums.
        let p = terms().premium_for_year(50.0e6, 10.0e6, 1.0e6);
        assert!((p - 2.0e6).abs() < 1e-6);
    }

    #[test]
    fn half_rate_reinstatements() {
        let half = ReinstatementTerms {
            count: 1,
            rate: 0.5,
        };
        let p = half.premium_for_year(10.0e6, 10.0e6, 2.0e6);
        // One full reinstatement at 50% of a 2M upfront = 1M.
        assert!((p - 1.0e6).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_limit_panics() {
        terms().premium_for_year(1.0, 0.0, 1.0);
    }

    #[test]
    fn expected_premium_averages_over_trials() {
        let ylt = YearLossTable::new(vec![0.0, 5.0e6, 10.0e6, 50.0e6]);
        let e = expected_reinstatement_premium(&ylt, &terms(), 10.0e6, 1.0e6);
        // Per-trial: 0, 0.5M, 1M, 2M → mean 0.875M.
        assert!((e - 0.875e6).abs() < 1e-3);
        assert_eq!(
            expected_reinstatement_premium(&YearLossTable::new(vec![]), &terms(), 1.0, 1.0),
            0.0
        );
    }

    #[test]
    fn breakeven_premium_balances_income_and_loss() {
        let ylt = YearLossTable::new(vec![0.0, 5.0e6, 10.0e6, 50.0e6]);
        let occ_limit = 10.0e6;
        let loading = 0.2;
        let p = breakeven_upfront_premium(&ylt, &terms(), occ_limit, loading).unwrap();
        // Check the fixed point: income(P) = (1 + loading) × AAL.
        let income = p + expected_reinstatement_premium(&ylt, &terms(), occ_limit, p);
        let target = 1.2 * ylt.mean();
        assert!((income - target).abs() / target < 1e-12);
        // Reinstatement income lets the upfront sit below the loaded AAL.
        assert!(p < target);
        assert!(
            breakeven_upfront_premium(&YearLossTable::new(vec![]), &terms(), 1.0, 0.0).is_none()
        );
    }
}
