//! Moments and quantile machinery over loss samples.

/// Arithmetic mean (0.0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation with Bessel's correction (0.0 for fewer than
/// two samples).
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    (ss / (xs.len() - 1) as f64).sqrt()
}

/// Empirical quantile at probability `p` in `[0, 1]` using linear
/// interpolation between order statistics (type-7 / the default of R and
/// NumPy). `O(n log n)` via a sorted copy.
///
/// # Panics
/// Panics if `xs` is empty or `p` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    let mut sorted = xs.to_vec();
    sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN in losses"));
    quantile_sorted(&sorted, p)
}

/// [`quantile`] over an already ascending-sorted sample (no copy).
///
/// # Panics
/// Panics if `xs` is empty or `p` is outside `[0, 1]`.
pub fn quantile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = p * (n - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    let frac = h - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Several quantiles in one sort.
///
/// # Panics
/// Panics if `xs` is empty or any probability is outside `[0, 1]`.
pub fn quantiles(xs: &[f64], ps: &[f64]) -> Vec<f64> {
    assert!(!xs.is_empty(), "quantile of empty sample");
    let mut sorted = xs.to_vec();
    sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN in losses"));
    ps.iter().map(|&p| quantile_sorted(&sorted, p)).collect()
}

/// Summary statistics of a loss sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossStatistics {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl LossStatistics {
    /// Compute from a sample; `None` if empty.
    pub fn from_sample(xs: &[f64]) -> Option<Self> {
        if xs.is_empty() {
            return None;
        }
        let mut sorted = xs.to_vec();
        sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN in losses"));
        Some(LossStatistics {
            count: xs.len(),
            mean: mean(xs),
            stddev: stddev(xs),
            min: sorted[0],
            median: quantile_sorted(&sorted, 0.5),
            max: sorted[sorted.len() - 1],
        })
    }

    /// Coefficient of variation (stddev / mean); 0.0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.stddev / self.mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        // Sample stddev of this classic set is sqrt(32/7).
        assert!((stddev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn degenerate_moments() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[]), 0.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        assert_eq!(mean(&[3.0]), 3.0);
    }

    #[test]
    fn quantile_endpoints_and_median() {
        let xs = [3.0, 1.0, 2.0, 5.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
        assert_eq!(quantile(&xs, 0.5), 3.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(quantile(&xs, 0.25), 2.5);
        assert_eq!(quantile(&xs, 0.75), 7.5);
    }

    #[test]
    fn quantile_single_sample() {
        assert_eq!(quantile(&[7.0], 0.3), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_empty_panics() {
        quantile(&[], 0.5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn quantile_bad_probability_panics() {
        quantile(&[1.0], 1.5);
    }

    #[test]
    fn quantiles_batch_matches_single() {
        let xs: Vec<f64> = (0..100).map(|i| (i * 37 % 100) as f64).collect();
        let ps = [0.1, 0.5, 0.9, 0.99];
        let batch = quantiles(&xs, &ps);
        for (q, &p) in batch.iter().zip(&ps) {
            assert_eq!(*q, quantile(&xs, p));
        }
    }

    #[test]
    fn loss_statistics() {
        let s = LossStatistics::from_sample(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.median, 2.5);
        assert!(s.cv() > 0.0);
        assert!(LossStatistics::from_sample(&[]).is_none());
    }

    #[test]
    fn cv_zero_mean() {
        let s = LossStatistics::from_sample(&[0.0, 0.0]).unwrap();
        assert_eq!(s.cv(), 0.0);
    }
}
