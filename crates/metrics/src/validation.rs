//! Structural validation of a YLT against its layer's terms.
//!
//! Used by the engines' test suites: whatever platform produced the YLT,
//! the losses must be non-negative, finite, and bounded by the layer's
//! aggregate limit (and occurrence losses by the occurrence limit).

use ara_core::{LayerTerms, YearLossTable};
use std::fmt;

/// A violated invariant found by [`validate_ylt`].
#[derive(Debug, Clone, PartialEq)]
pub enum YltViolation {
    /// A year loss is negative or non-finite.
    InvalidYearLoss {
        /// Trial index.
        trial: usize,
        /// The offending value.
        value: f64,
    },
    /// A year loss exceeds the aggregate limit.
    YearLossAboveLimit {
        /// Trial index.
        trial: usize,
        /// The offending value.
        value: f64,
        /// The aggregate limit it exceeds.
        limit: f64,
    },
    /// A maximum occurrence loss is negative, non-finite or exceeds the
    /// occurrence limit.
    InvalidOccurrenceLoss {
        /// Trial index.
        trial: usize,
        /// The offending value.
        value: f64,
        /// The occurrence limit in force.
        limit: f64,
    },
    /// The year loss is smaller than expected given a recorded occurrence
    /// loss that alone clears the aggregate retention... cannot occur with
    /// only one column, so this variant checks year loss < max occurrence
    /// net of aggregate retention.
    YearLossBelowOccurrenceFloor {
        /// Trial index.
        trial: usize,
        /// The year loss.
        year_loss: f64,
        /// The implied floor from the occurrence column.
        floor: f64,
    },
}

impl fmt::Display for YltViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            YltViolation::InvalidYearLoss { trial, value } => {
                write!(f, "trial {trial}: invalid year loss {value}")
            }
            YltViolation::YearLossAboveLimit {
                trial,
                value,
                limit,
            } => {
                write!(
                    f,
                    "trial {trial}: year loss {value} exceeds aggregate limit {limit}"
                )
            }
            YltViolation::InvalidOccurrenceLoss {
                trial,
                value,
                limit,
            } => {
                write!(
                    f,
                    "trial {trial}: occurrence loss {value} invalid for occurrence limit {limit}"
                )
            }
            YltViolation::YearLossBelowOccurrenceFloor {
                trial,
                year_loss,
                floor,
            } => {
                write!(
                    f,
                    "trial {trial}: year loss {year_loss} below occurrence-implied floor {floor}"
                )
            }
        }
    }
}

/// Check every invariant a YLT must satisfy under `terms`, within a
/// floating-point tolerance `tol` (absolute). Returns all violations.
pub fn validate_ylt(ylt: &YearLossTable, terms: &LayerTerms, tol: f64) -> Vec<YltViolation> {
    let mut out = Vec::new();
    for (trial, &l) in ylt.year_losses().iter().enumerate() {
        if !l.is_finite() || l < -tol {
            out.push(YltViolation::InvalidYearLoss { trial, value: l });
        } else if l > terms.agg_limit + tol {
            out.push(YltViolation::YearLossAboveLimit {
                trial,
                value: l,
                limit: terms.agg_limit,
            });
        }
    }
    if let Some(occ) = ylt.max_occurrence_losses() {
        for (trial, (&m, &l)) in occ.iter().zip(ylt.year_losses()).enumerate() {
            if !m.is_finite() || m < -tol || m > terms.occ_limit + tol {
                out.push(YltViolation::InvalidOccurrenceLoss {
                    trial,
                    value: m,
                    limit: terms.occ_limit,
                });
                continue;
            }
            // The worst single occurrence alone guarantees at least
            // clamp(m - AggR, 0, AggL) of year loss.
            let floor = (m - terms.agg_retention).max(0.0).min(terms.agg_limit);
            if l < floor - tol.max(1e-9 * floor.abs()) {
                out.push(YltViolation::YearLossBelowOccurrenceFloor {
                    trial,
                    year_loss: l,
                    floor,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn terms() -> LayerTerms {
        LayerTerms {
            occ_retention: 0.0,
            occ_limit: 100.0,
            agg_retention: 10.0,
            agg_limit: 200.0,
        }
    }

    #[test]
    fn valid_ylt_passes() {
        let ylt =
            YearLossTable::with_max_occurrence(vec![0.0, 90.0, 200.0], vec![0.0, 100.0, 100.0])
                .unwrap();
        assert!(validate_ylt(&ylt, &terms(), 1e-9).is_empty());
    }

    #[test]
    fn negative_year_loss_flagged() {
        let ylt = YearLossTable::new(vec![-1.0]);
        let v = validate_ylt(&ylt, &terms(), 1e-9);
        assert!(matches!(
            v[0],
            YltViolation::InvalidYearLoss { trial: 0, .. }
        ));
    }

    #[test]
    fn nan_year_loss_flagged() {
        let ylt = YearLossTable::new(vec![f64::NAN]);
        assert_eq!(validate_ylt(&ylt, &terms(), 1e-9).len(), 1);
    }

    #[test]
    fn year_loss_above_limit_flagged() {
        let ylt = YearLossTable::new(vec![201.0]);
        let v = validate_ylt(&ylt, &terms(), 1e-9);
        assert!(matches!(v[0], YltViolation::YearLossAboveLimit { limit, .. } if limit == 200.0));
    }

    #[test]
    fn occurrence_above_limit_flagged() {
        let ylt = YearLossTable::with_max_occurrence(vec![50.0], vec![101.0]).unwrap();
        let v = validate_ylt(&ylt, &terms(), 1e-9);
        assert!(matches!(v[0], YltViolation::InvalidOccurrenceLoss { .. }));
    }

    #[test]
    fn occurrence_floor_enforced() {
        // Max occurrence 100 with agg retention 10 implies year loss >= 90.
        let ylt = YearLossTable::with_max_occurrence(vec![50.0], vec![100.0]).unwrap();
        let v = validate_ylt(&ylt, &terms(), 1e-9);
        assert!(
            matches!(v[0], YltViolation::YearLossBelowOccurrenceFloor { floor, .. } if (floor - 90.0).abs() < 1e-12)
        );
    }

    #[test]
    fn tolerance_suppresses_rounding_noise() {
        let ylt = YearLossTable::new(vec![200.0 + 1e-7]);
        assert!(validate_ylt(&ylt, &terms(), 1e-6).is_empty());
        assert_eq!(validate_ylt(&ylt, &terms(), 1e-9).len(), 1);
    }

    #[test]
    fn violations_display() {
        let ylt = YearLossTable::new(vec![-1.0]);
        let v = validate_ylt(&ylt, &terms(), 1e-9);
        assert!(v[0].to_string().contains("trial 0"));
    }
}
