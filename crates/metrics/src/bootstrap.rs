//! Bootstrap confidence intervals for YLT-derived metrics.
//!
//! "A pre-simulated YET lends itself to statistical validation" (paper,
//! Section I): because the YLT is a plain i.i.d. sample of annual
//! outcomes, resampling it quantifies the Monte Carlo error of any
//! derived metric — how trustworthy a 250-year PML from 10,000 trials
//! actually is, and why the paper runs a million.
//!
//! Resampling uses the workspace's counter-based generator
//! ([`ara_core::uncertainty::draw_u01`]), so intervals are reproducible
//! without carrying RNG state.

use ara_core::uncertainty::draw_u01;

/// A two-sided confidence interval with its point estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// The statistic on the full sample.
    pub estimate: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// The confidence level the bounds correspond to (e.g. 0.95).
    pub level: f64,
}

impl ConfidenceInterval {
    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Relative half-width (half the width over the estimate's
    /// magnitude) — the "how many digits do I trust" number.
    pub fn relative_half_width(&self) -> f64 {
        if self.estimate == 0.0 {
            0.0
        } else {
            0.5 * self.width() / self.estimate.abs()
        }
    }
}

/// Percentile-bootstrap confidence interval for `statistic` over
/// `sample`, with `replicates` resamples at confidence `level`.
///
/// # Panics
/// Panics if the sample is empty, `replicates == 0`, or `level` is
/// outside `(0, 1)`.
pub fn bootstrap_ci(
    sample: &[f64],
    statistic: impl Fn(&[f64]) -> f64,
    replicates: usize,
    level: f64,
    seed: u64,
) -> ConfidenceInterval {
    assert!(!sample.is_empty(), "bootstrap of an empty sample");
    assert!(replicates > 0, "need at least one replicate");
    assert!(
        level > 0.0 && level < 1.0,
        "confidence level must be in (0, 1)"
    );

    let estimate = statistic(sample);
    let n = sample.len();
    let mut stats = Vec::with_capacity(replicates);
    let mut resample = vec![0.0; n];
    for r in 0..replicates {
        for (i, slot) in resample.iter_mut().enumerate() {
            let u = draw_u01(seed, r as u64, i as u32, 0);
            let idx = ((u * n as f64) as usize).min(n - 1);
            *slot = sample[idx];
        }
        stats.push(statistic(&resample));
    }
    stats.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite statistics"));
    let alpha = (1.0 - level) / 2.0;
    let lo = crate::stats::quantile_sorted(&stats, alpha);
    let hi = crate::stats::quantile_sorted(&stats, 1.0 - alpha);
    ConfidenceInterval {
        estimate,
        lo,
        hi,
        level,
    }
}

/// Convenience: bootstrap CI of the Average Annual Loss.
pub fn aal_ci(year_losses: &[f64], replicates: usize, level: f64, seed: u64) -> ConfidenceInterval {
    bootstrap_ci(year_losses, crate::stats::mean, replicates, level, seed)
}

/// Convenience: bootstrap CI of the PML at `return_period` years.
pub fn pml_ci(
    year_losses: &[f64],
    return_period: f64,
    replicates: usize,
    level: f64,
    seed: u64,
) -> ConfidenceInterval {
    bootstrap_ci(
        year_losses,
        |s| crate::pml::pml(s, return_period),
        replicates,
        level,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<f64> {
        // Deterministic heavy-ish synthetic losses.
        (0..n)
            .map(|i| ((i * 7919) % 1000) as f64 + ((i % 13) as f64).powi(3))
            .collect()
    }

    #[test]
    fn ci_brackets_the_estimate() {
        let s = sample(2000);
        let ci = aal_ci(&s, 200, 0.95, 1);
        assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi);
        assert!(ci.width() > 0.0);
        assert_eq!(ci.level, 0.95);
    }

    #[test]
    fn ci_is_deterministic_per_seed() {
        let s = sample(500);
        let a = aal_ci(&s, 100, 0.9, 7);
        let b = aal_ci(&s, 100, 0.9, 7);
        assert_eq!(a, b);
        let c = aal_ci(&s, 100, 0.9, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn interval_shrinks_with_sample_size() {
        // The Monte Carlo argument for a million trials: ~1/sqrt(n).
        let small = aal_ci(&sample(200), 200, 0.95, 3);
        let large = aal_ci(&sample(20_000), 200, 0.95, 3);
        assert!(
            large.relative_half_width() < 0.35 * small.relative_half_width(),
            "small {:.4} vs large {:.4}",
            small.relative_half_width(),
            large.relative_half_width()
        );
    }

    #[test]
    fn higher_confidence_is_wider() {
        let s = sample(1000);
        let c90 = aal_ci(&s, 300, 0.90, 5);
        let c99 = aal_ci(&s, 300, 0.99, 5);
        assert!(c99.width() >= c90.width());
    }

    #[test]
    fn tail_metrics_have_wider_relative_intervals() {
        // The deep tail is estimated from few order statistics: on a
        // heavy-tailed sample its CI must be relatively wider than the
        // mean's.
        let heavy = ara_core::UncertainLoss {
            mean: 100.0,
            std_dev: 300.0,
            max_loss: 1e12,
        };
        let s: Vec<f64> = (0..2000u64)
            .map(|i| heavy.quantile(draw_u01(13, i, 0, 0)))
            .collect();
        let mean_ci = aal_ci(&s, 200, 0.95, 9);
        let tail_ci = pml_ci(&s, 500.0, 200, 0.95, 9);
        assert!(
            tail_ci.relative_half_width() > mean_ci.relative_half_width(),
            "tail {:.4} vs mean {:.4}",
            tail_ci.relative_half_width(),
            mean_ci.relative_half_width()
        );
    }

    #[test]
    fn constant_sample_has_zero_width() {
        let s = vec![5.0; 100];
        let ci = aal_ci(&s, 50, 0.95, 1);
        assert_eq!(ci.lo, 5.0);
        assert_eq!(ci.hi, 5.0);
        assert_eq!(ci.relative_half_width(), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        aal_ci(&[], 10, 0.95, 1);
    }

    #[test]
    #[should_panic(expected = "confidence level")]
    fn bad_level_panics() {
        aal_ci(&[1.0], 10, 1.0, 1);
    }
}
