//! Marginal-contribution analysis: what each ELT adds to a layer.
//!
//! Underwriters price *books*, not events: when a layer covers 15 ELTs
//! (exposure sets), the question "which exposure drives my expected
//! loss?" is answered by leave-one-out marginals — re-run the analysis
//! without each ELT and difference the AALs. Because the layer terms
//! are non-linear (occurrence and aggregate clamps), marginals do not
//! sum to the total; the gap *is* the diversification/amplification the
//! terms create, and is reported alongside.

use ara_core::{analyse_layer, AraError, Inputs, Layer, PreparedLayer};

/// Leave-one-out contribution of one covered ELT.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EltContribution {
    /// Index of the ELT in `Inputs::elts`.
    pub elt_index: usize,
    /// AAL of the full layer minus the AAL without this ELT.
    pub marginal_aal: f64,
}

/// Contribution report for one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct ContributionReport {
    /// AAL of the full layer.
    pub total_aal: f64,
    /// Per-ELT leave-one-out marginals, in the layer's coverage order.
    pub contributions: Vec<EltContribution>,
}

impl ContributionReport {
    /// Sum of the marginals (≠ total under non-linear terms).
    pub fn marginal_sum(&self) -> f64 {
        self.contributions.iter().map(|c| c.marginal_aal).sum()
    }

    /// The non-additivity gap `total - Σ marginals`. Shared limits make
    /// it positive (the limit absorbs each individual removal, so
    /// marginals under-count), while shared retentions make it negative
    /// (removing one ELT can drop the rest below the deductible, so
    /// marginals over-count).
    pub fn diversification_gap(&self) -> f64 {
        self.total_aal - self.marginal_sum()
    }

    /// The covered ELT with the largest marginal.
    pub fn top_contributor(&self) -> Option<EltContribution> {
        self.contributions.iter().copied().max_by(|a, b| {
            a.marginal_aal
                .partial_cmp(&b.marginal_aal)
                .expect("finite AALs")
        })
    }
}

/// Leave-one-out contribution analysis of `layer` (sequential reference
/// engine; cost is `num_elts + 1` full analyses).
pub fn elt_contributions(inputs: &Inputs, layer: &Layer) -> Result<ContributionReport, AraError> {
    let full = PreparedLayer::<f64>::prepare(inputs, layer)?;
    let total_aal = analyse_layer(&full, &inputs.yet).mean();
    let mut contributions = Vec::with_capacity(layer.num_elts());
    for (k, &elt_index) in layer.elt_indices.iter().enumerate() {
        let mut reduced = layer.clone();
        reduced.elt_indices.remove(k);
        let aal_without = if reduced.elt_indices.is_empty() {
            0.0
        } else {
            let prepared = PreparedLayer::<f64>::prepare(inputs, &reduced)?;
            analyse_layer(&prepared, &inputs.yet).mean()
        };
        contributions.push(EltContribution {
            elt_index,
            marginal_aal: total_aal - aal_without,
        });
    }
    Ok(ContributionReport {
        total_aal,
        contributions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ara_core::{
        EventId, EventLoss, EventLossTable, EventOccurrence, FinancialTerms, LayerTerms,
        YearEventTableBuilder,
    };

    fn one_elt(event: u32, loss: f64) -> EventLossTable {
        EventLossTable::new(
            vec![EventLoss {
                event: EventId(event),
                loss,
            }],
            FinancialTerms::identity(),
        )
        .unwrap()
    }

    fn fixture(terms: LayerTerms) -> (Inputs, Layer) {
        let mut b = YearEventTableBuilder::new(10);
        b.push_trial(&[EventOccurrence::new(1, 0.2), EventOccurrence::new(2, 0.6)])
            .unwrap();
        b.push_trial(&[EventOccurrence::new(1, 0.4)]).unwrap();
        let elts = vec![one_elt(1, 100.0), one_elt(2, 50.0), one_elt(9, 1000.0)];
        let layer = Layer::new(0, vec![0, 1, 2], terms);
        (
            Inputs {
                yet: b.build(),
                elts,
                layers: vec![layer.clone()],
            },
            layer,
        )
    }

    #[test]
    fn linear_terms_make_marginals_additive() {
        let (inputs, layer) = fixture(LayerTerms::unlimited());
        let r = elt_contributions(&inputs, &layer).unwrap();
        // Trial losses: 150 and 100 → AAL 125. ELT0 contributes 100,
        // ELT1 25, ELT2 (event 9 never occurs) 0.
        assert_eq!(r.total_aal, 125.0);
        assert_eq!(r.contributions[0].marginal_aal, 100.0);
        assert_eq!(r.contributions[1].marginal_aal, 25.0);
        assert_eq!(r.contributions[2].marginal_aal, 0.0);
        assert!(r.diversification_gap().abs() < 1e-12);
        assert_eq!(r.top_contributor().unwrap().elt_index, 0);
    }

    #[test]
    fn binding_limits_shrink_marginals() {
        // Occurrence limit 80: event 1's 100 pays 80 with or without
        // ELT1's event-2 coverage; removing ELT1 removes only its own
        // clamped payout.
        let terms = LayerTerms {
            occ_retention: 0.0,
            occ_limit: 80.0,
            agg_retention: 0.0,
            agg_limit: 100.0,
        };
        let (inputs, layer) = fixture(terms);
        let r = elt_contributions(&inputs, &layer).unwrap();
        // Full: trial 1 = min(80+50, 100) = 100; trial 2 = 80 → AAL 90.
        assert_eq!(r.total_aal, 90.0);
        // Without ELT1: trial 1 = 80, trial 2 = 80 → 80; marginal 10
        // (not its ground-up 25): the aggregate limit absorbs the rest.
        assert_eq!(r.contributions[1].marginal_aal, 10.0);
        // Shared limits under-count every marginal, so the gap is
        // positive: 90 − (65 + 10 + 0) = 15.
        assert!(
            (r.diversification_gap() - 15.0).abs() < 1e-12,
            "gap {}",
            r.diversification_gap()
        );
    }

    #[test]
    fn shared_retention_makes_the_gap_negative() {
        // Aggregate retention 60: jointly the ELTs clear it, alone they
        // barely do — each marginal over-counts.
        let terms = LayerTerms {
            occ_retention: 0.0,
            occ_limit: f64::INFINITY,
            agg_retention: 60.0,
            agg_limit: f64::INFINITY,
        };
        let (inputs, layer) = fixture(terms);
        let r = elt_contributions(&inputs, &layer).unwrap();
        // Full: trial1 = 150-60 = 90, trial2 = 100-60 = 40 → AAL 65.
        // w/o ELT0: trial1 = 0 (50 < 60), trial2 = 0 → marginal 65.
        // w/o ELT1: trial1 = 40, trial2 = 40 → marginal 25.
        assert_eq!(r.total_aal, 65.0);
        assert_eq!(r.contributions[0].marginal_aal, 65.0);
        assert_eq!(r.contributions[1].marginal_aal, 25.0);
        assert!(
            r.diversification_gap() < 0.0,
            "gap {}",
            r.diversification_gap()
        );
    }

    #[test]
    fn generated_book_contributions_are_sane() {
        let inputs = ara_workload::Scenario::new(ara_workload::ScenarioShape::smoke(), 4)
            .build()
            .unwrap();
        let layer = inputs.layers[0].clone();
        let r = elt_contributions(&inputs, &layer).unwrap();
        assert_eq!(r.contributions.len(), layer.num_elts());
        for c in &r.contributions {
            // Adding coverage can only add expected loss.
            assert!(
                c.marginal_aal >= -1e-9,
                "ELT {} marginal {}",
                c.elt_index,
                c.marginal_aal
            );
            assert!(c.marginal_aal <= r.total_aal + 1e-9);
        }
    }
}
