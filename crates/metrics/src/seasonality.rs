//! Seasonal attribution of occurrences and losses.
//!
//! The paper's pre-simulated YET carries a timestamp per occurrence so
//! the view of a year can be "tuned for seasonality and cluster effects"
//! (Section I). This module closes the loop on the analysis side: it
//! bins occurrences — and, via the per-occurrence marginal payouts of
//! Algorithm 1's aggregate-terms stage, *paid losses* — by their position
//! in the contractual year. An underwriter reads this as "which months
//! actually consume my limit", the quantity renewal-date and
//! reinstatement decisions hinge on.

use ara_core::analysis::analyse_trial_attributed;
use ara_core::{LossLookup, PreparedLayer, Real, TrialWorkspace, YearEventTable};

/// Occurrence counts and paid losses per year-fraction bin.
#[derive(Debug, Clone, PartialEq)]
pub struct SeasonalProfile {
    /// Occurrences whose timestamp fell in each bin.
    pub occurrences: Vec<u64>,
    /// Marginal paid loss attributed to each bin (summed over trials).
    pub paid_loss: Vec<f64>,
}

impl SeasonalProfile {
    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.occurrences.len()
    }

    /// Fraction of total paid loss in each bin (uniform zeros if no
    /// loss was paid).
    pub fn loss_shares(&self) -> Vec<f64> {
        let total: f64 = self.paid_loss.iter().sum();
        if total <= 0.0 {
            return vec![0.0; self.paid_loss.len()];
        }
        self.paid_loss.iter().map(|&l| l / total).collect()
    }

    /// The bin with the largest paid loss (ties resolve to the first).
    pub fn peak_bin(&self) -> usize {
        self.paid_loss
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite losses"))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// Count occurrences per year-fraction bin, across all trials of the
/// YET (no loss model involved).
///
/// # Panics
/// Panics if `bins == 0`.
pub fn occurrence_profile(yet: &YearEventTable, bins: usize) -> Vec<u64> {
    assert!(bins > 0, "need at least one bin");
    let mut counts = vec![0u64; bins];
    for trial in yet.trials() {
        for &t in trial.times {
            let b = ((t.0 as f64 * bins as f64) as usize).min(bins - 1);
            counts[b] += 1;
        }
    }
    counts
}

/// Full seasonal profile of one layer: occurrences and attributed paid
/// losses per bin, from a sequential attributed analysis.
///
/// # Panics
/// Panics if `bins == 0`.
pub fn seasonal_profile<R: Real, L: LossLookup<R>>(
    yet: &YearEventTable,
    prepared: &PreparedLayer<R, L>,
    bins: usize,
) -> SeasonalProfile {
    assert!(bins > 0, "need at least one bin");
    let mut occurrences = vec![0u64; bins];
    let mut paid_loss = vec![0.0f64; bins];
    let mut ws = TrialWorkspace::with_capacity(yet.max_events_per_trial());
    let mut attribution = Vec::new();
    for trial in yet.trials() {
        attribution.clear();
        analyse_trial_attributed(prepared, trial, &mut ws, &mut attribution);
        for &(time, paid) in &attribution {
            let b = ((time.0 as f64 * bins as f64) as usize).min(bins - 1);
            occurrences[b] += 1;
            paid_loss[b] += paid.to_f64();
        }
    }
    SeasonalProfile {
        occurrences,
        paid_loss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ara_core::{
        EventId, EventLoss, EventLossTable, EventOccurrence, FinancialTerms, Inputs, Layer,
        LayerTerms, YearEventTableBuilder,
    };

    fn fixture(times: &[f32]) -> (Inputs, Layer) {
        let mut b = YearEventTableBuilder::new(10);
        let occs: Vec<_> = times.iter().map(|&t| EventOccurrence::new(1, t)).collect();
        b.push_trial(&occs).unwrap();
        let elt = EventLossTable::new(
            vec![EventLoss {
                event: EventId(1),
                loss: 100.0,
            }],
            FinancialTerms::identity(),
        )
        .unwrap();
        let layer = Layer::new(0, vec![0], LayerTerms::unlimited());
        (
            Inputs {
                yet: b.build(),
                elts: vec![elt],
                layers: vec![layer.clone()],
            },
            layer,
        )
    }

    #[test]
    fn occurrence_profile_bins_by_timestamp() {
        let (inputs, _) = fixture(&[0.1, 0.1, 0.6, 0.9]);
        let counts = occurrence_profile(&inputs.yet, 4);
        assert_eq!(counts, vec![2, 0, 1, 1]);
    }

    #[test]
    fn top_bin_is_inclusive_of_late_timestamps() {
        let (inputs, _) = fixture(&[0.999]);
        let counts = occurrence_profile(&inputs.yet, 4);
        assert_eq!(counts, vec![0, 0, 0, 1]);
    }

    #[test]
    fn unlimited_layer_attributes_full_loss_per_bin() {
        let (inputs, layer) = fixture(&[0.1, 0.6]);
        let prepared = PreparedLayer::<f64>::prepare(&inputs, &layer).unwrap();
        let p = seasonal_profile(&inputs.yet, &prepared, 4);
        assert_eq!(p.occurrences, vec![1, 0, 1, 0]);
        assert_eq!(p.paid_loss, vec![100.0, 0.0, 100.0, 0.0]);
        assert_eq!(p.loss_shares(), vec![0.5, 0.0, 0.5, 0.0]);
    }

    #[test]
    fn aggregate_limit_pays_early_occurrences_first() {
        // Aggregate limit 150: the 0.1 event pays 100, the 0.6 event the
        // remaining 50 — seasonal attribution shows limit exhaustion.
        let (mut inputs, mut layer) = fixture(&[0.1, 0.6, 0.9]);
        layer.terms = LayerTerms {
            occ_retention: 0.0,
            occ_limit: f64::INFINITY,
            agg_retention: 0.0,
            agg_limit: 150.0,
        };
        inputs.layers[0] = layer.clone();
        let prepared = PreparedLayer::<f64>::prepare(&inputs, &layer).unwrap();
        let p = seasonal_profile(&inputs.yet, &prepared, 4);
        assert_eq!(p.paid_loss, vec![100.0, 0.0, 50.0, 0.0]);
        assert_eq!(p.peak_bin(), 0);
        // Attribution sums to the year loss.
        let total: f64 = p.paid_loss.iter().sum();
        assert_eq!(total, 150.0);
    }

    #[test]
    fn attribution_matches_plain_analysis_totals() {
        let (inputs, layer) = fixture(&[0.05, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95]);
        let prepared = PreparedLayer::<f64>::prepare(&inputs, &layer).unwrap();
        let ylt = ara_core::analyse_layer(&prepared, &inputs.yet);
        let p = seasonal_profile(&inputs.yet, &prepared, 12);
        let total: f64 = p.paid_loss.iter().sum();
        let expected: f64 = ylt.year_losses().iter().sum();
        assert!((total - expected).abs() < 1e-9);
    }

    #[test]
    fn empty_profile_shares_are_zero() {
        let (inputs, layer) = fixture(&[]);
        let prepared = PreparedLayer::<f64>::prepare(&inputs, &layer).unwrap();
        let p = seasonal_profile(&inputs.yet, &prepared, 4);
        assert_eq!(p.loss_shares(), vec![0.0; 4]);
        assert_eq!(p.num_bins(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let (inputs, _) = fixture(&[0.5]);
        occurrence_profile(&inputs.yet, 0);
    }
}
