//! # ara-metrics — portfolio risk metrics over Year Loss Tables
//!
//! "From a YLT, an insurer or a re-insurer can derive important portfolio
//! risk metrics, such as the Probable Maximum Loss (PML) and the Tail
//! Value-at-Risk (TVaR), which are used for internal risk management and
//! reporting to regulators and rating agencies." (paper, Section I)
//!
//! This crate provides those "financial functions or filters … applied on
//! the aggregate loss values" (Section II):
//!
//! * [`stats`] — moments and quantile machinery over a YLT.
//! * [`ep`] — exceedance-probability curves (AEP from year losses, OEP
//!   from per-trial maximum occurrence losses) and return periods.
//! * [`mod@pml`] — Probable Maximum Loss at standard return periods.
//! * [`mod@tvar`] — Value-at-Risk and Tail Value-at-Risk.
//! * [`validation`] — structural sanity checks on a YLT against its
//!   layer's terms.
//! * [`reinstatement`] — reinstatement-provision premiums (the pricing
//!   construct the paper's Algorithm 1 keeps per-event marginals for).
//! * [`bootstrap`] — resampling confidence intervals: the "statistical
//!   validation" a pre-simulated YET enables (Section I).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bootstrap;
pub mod contribution;
pub mod ep;
pub mod pml;
pub mod reinstatement;
pub mod seasonality;
pub mod stats;
pub mod tvar;
pub mod validation;

pub use bootstrap::{aal_ci, bootstrap_ci, pml_ci, ConfidenceInterval};
pub use contribution::{elt_contributions, ContributionReport, EltContribution};
pub use ep::{EpCurve, EpKind, EpPoint};
pub use pml::{pml, pml_table, STANDARD_RETURN_PERIODS};
pub use reinstatement::{
    breakeven_upfront_premium, expected_reinstatement_premium, ReinstatementTerms,
};
pub use seasonality::{occurrence_profile, seasonal_profile, SeasonalProfile};
pub use stats::{mean, quantile, stddev, LossStatistics};
pub use tvar::{tvar, value_at_risk};
pub use validation::validate_ylt;

use ara_core::YearLossTable;

/// A one-stop summary of the risk metrics the paper motivates, computed
/// from a single YLT.
#[derive(Debug, Clone, PartialEq)]
pub struct RiskSummary {
    /// Average Annual Loss (mean year loss).
    pub aal: f64,
    /// Standard deviation of the year loss.
    pub stddev: f64,
    /// Probability that the layer attaches (year loss > 0).
    pub attachment_probability: f64,
    /// VaR at 99% (the 1-in-100-year loss).
    pub var_99: f64,
    /// TVaR at 99%.
    pub tvar_99: f64,
    /// PML at the 250-year return period.
    pub pml_250: f64,
}

impl RiskSummary {
    /// Compute the summary from a YLT.
    ///
    /// Returns `None` for an empty YLT (no trials → no estimates).
    pub fn from_ylt(ylt: &YearLossTable) -> Option<Self> {
        if ylt.is_empty() {
            return None;
        }
        let losses = ylt.year_losses();
        Some(RiskSummary {
            aal: stats::mean(losses),
            stddev: stats::stddev(losses),
            attachment_probability: ylt.attachment_probability(),
            var_99: tvar::value_at_risk(losses, 0.99),
            tvar_99: tvar::tvar(losses, 0.99),
            pml_250: pml::pml(losses, 250.0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_on_simple_ylt() {
        let losses: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let ylt = YearLossTable::new(losses);
        let s = RiskSummary::from_ylt(&ylt).unwrap();
        assert!((s.aal - 499.5).abs() < 1e-9);
        assert!(s.var_99 >= 985.0 && s.var_99 <= 995.0);
        assert!(s.tvar_99 >= s.var_99);
        assert!(s.pml_250 > s.var_99);
        assert!((s.attachment_probability - 0.999).abs() < 1e-9);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(RiskSummary::from_ylt(&YearLossTable::new(vec![])).is_none());
    }
}
