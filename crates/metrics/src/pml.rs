//! Probable Maximum Loss (PML).
//!
//! The PML at return period `T` is the loss exceeded with annual
//! probability `1/T` — a point read off the EP curve. Regulators and
//! rating agencies conventionally quote the 100-, 250- and 500-year PMLs.

use crate::ep::{EpCurve, EpKind};

/// Return periods conventionally reported (years).
pub const STANDARD_RETURN_PERIODS: [f64; 6] = [10.0, 25.0, 50.0, 100.0, 250.0, 500.0];

/// PML of a year-loss sample at one return period (years).
///
/// ```
/// // 1000 simulated years of losses 1..=1000: the 100-year PML is the
/// // loss exceeded in ~10 of them.
/// let losses: Vec<f64> = (1..=1000).map(f64::from).collect();
/// let p100 = ara_metrics::pml(&losses, 100.0);
/// assert!((990.0..=992.0).contains(&p100));
/// ```
///
/// # Panics
/// Panics if `losses` is empty or `return_period < 1`.
pub fn pml(losses: &[f64], return_period: f64) -> f64 {
    let curve = EpCurve::from_losses(losses, EpKind::Aep).expect("PML of an empty loss sample");
    curve.loss_at_return_period(return_period)
}

/// PMLs at each of the [`STANDARD_RETURN_PERIODS`], as
/// `(return_period, loss)` rows.
///
/// # Panics
/// Panics if `losses` is empty.
pub fn pml_table(losses: &[f64]) -> Vec<(f64, f64)> {
    let curve = EpCurve::from_losses(losses, EpKind::Aep).expect("PML of an empty loss sample");
    STANDARD_RETURN_PERIODS
        .iter()
        .map(|&t| (t, curve.loss_at_return_period(t)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn losses() -> Vec<f64> {
        (1..=1000).map(|i| i as f64).collect()
    }

    #[test]
    fn pml_at_known_periods() {
        let l = losses();
        // 1000 trials of 1..=1000: the 100-year loss is ~the 10th largest.
        let p100 = pml(&l, 100.0);
        assert!((990.0..=992.0).contains(&p100), "p100 {p100}");
        let p1000 = pml(&l, 1000.0);
        assert_eq!(p1000, 1000.0);
    }

    #[test]
    fn pml_is_monotone_in_return_period() {
        let l = losses();
        let mut prev = 0.0;
        for t in [2.0, 5.0, 10.0, 50.0, 100.0, 250.0, 500.0] {
            let p = pml(&l, t);
            assert!(p >= prev, "PML must grow with return period");
            prev = p;
        }
    }

    #[test]
    fn pml_table_rows() {
        let rows = pml_table(&losses());
        assert_eq!(rows.len(), STANDARD_RETURN_PERIODS.len());
        for (row, &t) in rows.iter().zip(&STANDARD_RETURN_PERIODS) {
            assert_eq!(row.0, t);
        }
        for w in rows.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn pml_empty_panics() {
        pml(&[], 100.0);
    }
}
