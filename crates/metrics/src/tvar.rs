//! Value-at-Risk and Tail Value-at-Risk.
//!
//! VaR at level `q` is the `q`-quantile of the year-loss distribution;
//! TVaR at level `q` is the conditional mean of losses at or beyond that
//! quantile — the coherent tail measure the paper cites (Gaivoronski &
//! Pflug; Glasserman et al.).

use crate::stats::quantile_sorted;

/// Value-at-Risk: the `q`-quantile of the loss sample (`q` in `[0, 1)`).
///
/// # Panics
/// Panics if `losses` is empty or `q` is outside `[0, 1)`.
pub fn value_at_risk(losses: &[f64], q: f64) -> f64 {
    assert!(!losses.is_empty(), "VaR of an empty loss sample");
    assert!((0.0..1.0).contains(&q), "VaR level must be in [0, 1)");
    let mut sorted = losses.to_vec();
    sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN in losses"));
    quantile_sorted(&sorted, q)
}

/// Tail Value-at-Risk: mean of the losses `>= VaR_q`, i.e. the expected
/// loss in the worst `(1 - q)` fraction of years.
///
/// ```
/// let losses: Vec<f64> = (1..=100).map(f64::from).collect();
/// // Worst 10% of years: 91..=100, mean 95.5.
/// assert_eq!(ara_metrics::tvar(&losses, 0.9), 95.5);
/// ```
///
/// # Panics
/// Panics if `losses` is empty or `q` is outside `[0, 1)`.
pub fn tvar(losses: &[f64], q: f64) -> f64 {
    assert!(!losses.is_empty(), "TVaR of an empty loss sample");
    assert!((0.0..1.0).contains(&q), "TVaR level must be in [0, 1)");
    let mut sorted = losses.to_vec();
    sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN in losses"));
    // Tail = the ceil((1-q) * n) largest losses (at least one). The small
    // epsilon keeps binary rounding of (1-q) from inflating the ceil
    // (e.g. (1-0.99)*100 = 1.0000000000000009).
    let n = sorted.len();
    let k = ((((1.0 - q) * n as f64) - 1e-9).ceil() as usize).clamp(1, n);
    let tail = &sorted[n - k..];
    tail.iter().sum::<f64>() / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn losses() -> Vec<f64> {
        (1..=100).map(|i| i as f64).collect()
    }

    #[test]
    fn var_is_the_quantile() {
        let l = losses();
        let v = value_at_risk(&l, 0.99);
        assert!((v - 99.01).abs() < 0.02, "VaR99 {v}");
        assert_eq!(value_at_risk(&l, 0.0), 1.0);
    }

    #[test]
    fn tvar_is_the_tail_mean() {
        let l = losses();
        // Worst 10%: 91..=100, mean 95.5.
        assert!((tvar(&l, 0.9) - 95.5).abs() < 1e-9);
        // Worst 1%: the single largest loss.
        assert_eq!(tvar(&l, 0.99), 100.0);
    }

    #[test]
    fn tvar_dominates_var() {
        let l = losses();
        for q in [0.5, 0.9, 0.95, 0.99] {
            assert!(tvar(&l, q) >= value_at_risk(&l, q), "TVaR >= VaR at q={q}");
        }
    }

    #[test]
    fn tvar_at_zero_is_the_mean() {
        let l = losses();
        assert!((tvar(&l, 0.0) - 50.5).abs() < 1e-9);
    }

    #[test]
    fn constant_sample() {
        let l = vec![5.0; 10];
        assert_eq!(value_at_risk(&l, 0.9), 5.0);
        assert_eq!(tvar(&l, 0.9), 5.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn var_empty_panics() {
        value_at_risk(&[], 0.5);
    }

    #[test]
    #[should_panic(expected = "level")]
    fn tvar_bad_level_panics() {
        tvar(&[1.0], 1.0);
    }
}
