//! Exceedance-probability (EP) curves and return periods.
//!
//! An EP curve maps a loss threshold to the annual probability of
//! exceeding it. Two flavours are standard:
//!
//! * **AEP** (aggregate): built from the YLT's per-trial *year losses* —
//!   probability that the annual aggregate exceeds the threshold.
//! * **OEP** (occurrence): built from the per-trial *maximum occurrence
//!   losses* — probability that any single occurrence exceeds it.
//!
//! The return period of a loss is `1 / exceedance probability`.

use ara_core::YearLossTable;

/// Which loss column an EP curve was built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpKind {
    /// Aggregate (annual) exceedance probability.
    Aep,
    /// Occurrence exceedance probability.
    Oep,
}

/// One point of an EP curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpPoint {
    /// Loss threshold.
    pub loss: f64,
    /// Probability that a year's loss reaches or exceeds `loss`.
    pub probability: f64,
}

impl EpPoint {
    /// The return period `1 / probability` (`inf` at probability 0).
    pub fn return_period(&self) -> f64 {
        if self.probability <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / self.probability
        }
    }
}

/// An empirical exceedance-probability curve.
///
/// Stored as losses sorted descending with their empirical exceedance
/// probabilities `rank / n` (Weibull plotting position `i / n` for the
/// i-th largest loss).
#[derive(Debug, Clone, PartialEq)]
pub struct EpCurve {
    kind: EpKind,
    /// Losses sorted descending.
    sorted_desc: Vec<f64>,
}

impl EpCurve {
    /// Build the AEP curve from a YLT's year losses.
    ///
    /// Returns `None` for an empty YLT.
    pub fn aep(ylt: &YearLossTable) -> Option<Self> {
        Self::from_losses(ylt.year_losses(), EpKind::Aep)
    }

    /// Build the OEP curve from a YLT's maximum occurrence losses.
    ///
    /// Returns `None` if the YLT does not carry the occurrence column or
    /// is empty.
    pub fn oep(ylt: &YearLossTable) -> Option<Self> {
        Self::from_losses(ylt.max_occurrence_losses()?, EpKind::Oep)
    }

    /// Build from raw per-year losses.
    pub fn from_losses(losses: &[f64], kind: EpKind) -> Option<Self> {
        if losses.is_empty() {
            return None;
        }
        let mut sorted = losses.to_vec();
        sorted.sort_unstable_by(|a, b| b.partial_cmp(a).expect("NaN in losses"));
        Some(EpCurve {
            kind,
            sorted_desc: sorted,
        })
    }

    /// The curve's kind.
    pub fn kind(&self) -> EpKind {
        self.kind
    }

    /// Number of underlying trials.
    pub fn num_trials(&self) -> usize {
        self.sorted_desc.len()
    }

    /// Empirical probability that the annual loss is `>= loss`.
    pub fn exceedance_probability(&self, loss: f64) -> f64 {
        // sorted_desc: count entries >= loss via partition point.
        let count = self.sorted_desc.partition_point(|&x| x >= loss);
        count as f64 / self.sorted_desc.len() as f64
    }

    /// The loss at a given return period (in years), interpolating
    /// between order statistics. Clamped to the observed range; returns
    /// the maximum observed loss for return periods beyond `n` years.
    ///
    /// # Panics
    /// Panics if `return_period < 1`.
    pub fn loss_at_return_period(&self, return_period: f64) -> f64 {
        assert!(return_period >= 1.0, "return period below one year");
        let n = self.sorted_desc.len() as f64;
        // Exceedance probability p = 1/T; the i-th largest loss (1-based)
        // has plotting position p_i = i / n, so i = n / T.
        let i = n / return_period;
        if i <= 1.0 {
            return self.sorted_desc[0];
        }
        let lo = (i.floor() as usize - 1).min(self.sorted_desc.len() - 1);
        let hi = (lo + 1).min(self.sorted_desc.len() - 1);
        let frac = i - i.floor();
        self.sorted_desc[lo] + (self.sorted_desc[hi] - self.sorted_desc[lo]) * frac
    }

    /// Sample the curve at each of `return_periods` (years).
    pub fn points_at(&self, return_periods: &[f64]) -> Vec<EpPoint> {
        return_periods
            .iter()
            .map(|&t| {
                let loss = self.loss_at_return_period(t);
                EpPoint {
                    loss,
                    probability: 1.0 / t,
                }
            })
            .collect()
    }

    /// The full empirical curve, one point per distinct order statistic,
    /// losses descending.
    pub fn points(&self) -> Vec<EpPoint> {
        let n = self.sorted_desc.len() as f64;
        self.sorted_desc
            .iter()
            .enumerate()
            .map(|(i, &loss)| EpPoint {
                loss,
                probability: (i + 1) as f64 / n,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ylt() -> YearLossTable {
        // 100 trials with losses 1..=100.
        YearLossTable::new((1..=100).map(|i| i as f64).collect())
    }

    #[test]
    fn aep_exceedance_probabilities() {
        let c = EpCurve::aep(&ylt()).unwrap();
        assert_eq!(c.kind(), EpKind::Aep);
        assert_eq!(c.num_trials(), 100);
        assert_eq!(c.exceedance_probability(1.0), 1.0);
        assert_eq!(c.exceedance_probability(51.0), 0.5);
        assert_eq!(c.exceedance_probability(100.0), 0.01);
        assert_eq!(c.exceedance_probability(101.0), 0.0);
    }

    #[test]
    fn return_period_inverts_probability() {
        let c = EpCurve::aep(&ylt()).unwrap();
        // 100-year loss with 100 trials = the largest loss.
        assert_eq!(c.loss_at_return_period(100.0), 100.0);
        // 2-year loss: i = 50 → 51st..50th order statistic boundary.
        let two_year = c.loss_at_return_period(2.0);
        assert!(
            (50.0..=52.0).contains(&two_year),
            "two-year loss {two_year}"
        );
        // Beyond the observed range → max loss.
        assert_eq!(c.loss_at_return_period(10_000.0), 100.0);
    }

    #[test]
    #[should_panic(expected = "return period")]
    fn sub_annual_return_period_panics() {
        EpCurve::aep(&ylt()).unwrap().loss_at_return_period(0.5);
    }

    #[test]
    fn oep_uses_occurrence_column() {
        let t = YearLossTable::with_max_occurrence(vec![10.0, 20.0], vec![5.0, 8.0]).unwrap();
        let oep = EpCurve::oep(&t).unwrap();
        assert_eq!(oep.kind(), EpKind::Oep);
        assert_eq!(oep.exceedance_probability(6.0), 0.5);
        // Without the column, no OEP.
        assert!(EpCurve::oep(&YearLossTable::new(vec![1.0])).is_none());
    }

    #[test]
    fn empty_ylt_yields_no_curve() {
        assert!(EpCurve::aep(&YearLossTable::new(vec![])).is_none());
    }

    #[test]
    fn points_are_monotone() {
        let c = EpCurve::aep(&ylt()).unwrap();
        let pts = c.points();
        assert_eq!(pts.len(), 100);
        for w in pts.windows(2) {
            assert!(w[0].loss >= w[1].loss);
            assert!(w[0].probability <= w[1].probability);
        }
        assert_eq!(pts[0].probability, 0.01);
        assert_eq!(pts[99].probability, 1.0);
    }

    #[test]
    fn points_at_standard_periods() {
        let c = EpCurve::aep(&ylt()).unwrap();
        let pts = c.points_at(&[10.0, 50.0, 100.0]);
        assert_eq!(pts.len(), 3);
        assert!(pts[0].loss < pts[1].loss && pts[1].loss < pts[2].loss);
        assert_eq!(pts[2].return_period(), 100.0);
    }

    #[test]
    fn ep_point_return_period() {
        assert_eq!(
            EpPoint {
                loss: 1.0,
                probability: 0.02
            }
            .return_period(),
            50.0
        );
        assert_eq!(
            EpPoint {
                loss: 1.0,
                probability: 0.0
            }
            .return_period(),
            f64::INFINITY
        );
    }

    #[test]
    fn curve_monotonicity_property() {
        // Exceedance probability must be non-increasing in the threshold.
        let losses: Vec<f64> = (0..500).map(|i| ((i * 7919) % 1000) as f64).collect();
        let c = EpCurve::from_losses(&losses, EpKind::Aep).unwrap();
        let mut prev = 1.0;
        for t in (0..1000).step_by(25) {
            let p = c.exceedance_probability(t as f64);
            assert!(p <= prev + 1e-12);
            prev = p;
        }
    }
}
