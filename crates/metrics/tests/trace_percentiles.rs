//! Pins the bucketed percentile math in `ara_trace`'s histogram against
//! the exact sample quantiles in `ara_metrics::stats`.
//!
//! The trace histogram uses power-of-two buckets, so its quantile is the
//! upper bound of the bucket holding the ranked sample — exact at the
//! extremes and within a factor of two elsewhere. These tests make that
//! contract explicit so the two implementations cannot drift apart
//! silently (e.g. a bucketing change that quietly breaks the p99 column
//! in trace summaries).

use ara_metrics::stats;
use ara_trace::metrics as trace_metrics;
use ara_trace::testing::{reset, serial_guard};

/// Record `values` into a fresh named histogram and return its snapshot.
fn bucketed(name: &'static str, values: &[u64]) -> ara_trace::HistogramSnapshot {
    let h = trace_metrics().histogram(name);
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

#[test]
fn bucketed_quantiles_track_exact_quantiles_within_factor_two() {
    let _g = serial_guard();
    reset();
    let values: Vec<u64> = (1..=1000).collect();
    let exact_input: Vec<f64> = values.iter().map(|&v| v as f64).collect();
    let snap = bucketed("pin.uniform", &values);

    for &q in &[0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99] {
        let exact = stats::quantile(&exact_input, q);
        let approx = snap.quantile(q) as f64;
        assert!(
            approx >= exact / 2.0 && approx <= exact * 2.0,
            "q={q}: bucketed {approx} outside factor-2 band of exact {exact}"
        );
    }
    reset();
}

#[test]
fn extremes_are_exact_and_quantiles_are_monotone() {
    let _g = serial_guard();
    reset();
    // Skewed sample: heavy low tail plus a few large outliers.
    let mut values: Vec<u64> = (1..=100).collect();
    values.extend([5_000, 60_000, 1_000_000]);
    let exact_input: Vec<f64> = values.iter().map(|&v| v as f64).collect();
    let snap = bucketed("pin.skewed", &values);

    // q = 0 and q = 1 are exact by contract, matching the exact stats.
    assert_eq!(
        snap.quantile(0.0) as f64,
        stats::quantile(&exact_input, 0.0)
    );
    assert_eq!(
        snap.quantile(1.0) as f64,
        stats::quantile(&exact_input, 1.0)
    );

    // Both implementations are monotone non-decreasing in q.
    let grid: Vec<f64> = (0..=20).map(|i| i as f64 / 20.0).collect();
    for pair in grid.windows(2) {
        assert!(
            snap.quantile(pair[0]) <= snap.quantile(pair[1]),
            "bucketed quantile not monotone at q={}..{}",
            pair[0],
            pair[1]
        );
        assert!(
            stats::quantile(&exact_input, pair[0]) <= stats::quantile(&exact_input, pair[1]),
            "exact quantile not monotone at q={}..{}",
            pair[0],
            pair[1]
        );
    }
    reset();
}

#[test]
fn single_sample_collapses_both_implementations() {
    let _g = serial_guard();
    reset();
    let snap = bucketed("pin.single", &[42]);
    for &q in &[0.0, 0.5, 1.0] {
        assert_eq!(snap.quantile(q), 42);
        assert_eq!(stats::quantile(&[42.0], q), 42.0);
    }
    reset();
}
